//! Per-layer profiling report for the masked executor.
//!
//! Usage: `cargo run -p antidote-bench --bin profile_report --release`
//!
//! Default mode runs a seeded ResNet56/CIFAR-10 smoke evaluation through
//! the masked executor with observability enabled, then renders the
//! per-layer profile: wall-clock time share (from the `fwd.layerNN`
//! spans), analytically attributed MACs share, measured MACs, and
//! input-side keep rates. The full row set is also printed as JSON. The
//! binary self-checks its output — time% and MACs% must each sum to
//! 100±0.1 and the attributed per-layer MACs must equal
//! `antidote_core::flops::analytic_flops` exactly — and exits non-zero
//! on violation, so CI can use it as a profiling regression gate.
//!
//! `--overhead-smoke` instead times dense forwards three ways —
//! observability disabled, enabled, and fully traced (per-request span/
//! counter collector active plus a flight-recorder record per forward,
//! the serving stack's per-request instrumentation) — and fails if
//! either instrumented/disabled ratio exceeds a generous noise bound:
//! the "off by default, near-zero cost disabled" guarantee of
//! `antidote-obs` (DESIGN.md §9) extended to the tracing layer
//! (DESIGN.md §14).
//!
//! Knobs: `ANTIDOTE_TRACE`/`ANTIDOTE_LOG` (see `antidote-obs`);
//! `ANTIDOTE_SCALE` selects the workload scale as elsewhere.

use antidote_bench::{ModelKind, ReproWorkload, Scale};
use antidote_core::flops::analytic_flops;
use antidote_core::profile::{profile_rows, render_table};
use antidote_core::settings::{proposed_settings, Workload};
use antidote_core::trainer::evaluate_measured;
use antidote_core::DynamicPruner;
use antidote_models::Network;
use antidote_tensor::Tensor;
use std::time::Instant;

/// Instrumented/disabled wall-time ratio allowed by `--overhead-smoke`
/// (applied to both the enabled and the fully-traced measurement).
/// Deliberately loose: per-layer spans cost nanoseconds against
/// milliseconds of conv work, but CI machines are noisy.
const OVERHEAD_BOUND: f64 = 1.5;

fn main() {
    antidote_obs::init_from_env();
    if std::env::args().any(|a| a == "--overhead-smoke") {
        overhead_smoke();
        return;
    }
    profile_smoke();
}

/// Default mode: profile a seeded ResNet56/CIFAR-10 smoke evaluation.
fn profile_smoke() {
    let scale = Scale::from_env();
    println!("== AntiDote per-layer profile: ResNet56/CIFAR-10 smoke run (scale {scale:?}) ==\n");
    let rw = ReproWorkload::for_workload(Workload::ResNet56Cifar10, scale);
    let data = rw.data.generate();
    let setting = proposed_settings()
        .into_iter()
        .find(|s| s.workload == Workload::ResNet56Cifar10)
        .expect("resnet56/cifar10 setting exists");
    let mut net = rw.build_network(0x0B5);
    let shapes = net.conv_shapes();
    let mut pruner = DynamicPruner::new(setting.schedule.clone());

    antidote_obs::set_enabled(true);
    antidote_obs::reset();
    let (acc, macs_per_image) =
        evaluate_measured(net.as_mut(), &data.test, &mut pruner, rw.batch_size);
    let snap = antidote_obs::snapshot();
    antidote_obs::set_enabled(false);

    let rows = profile_rows(&snap, &shapes, &setting.schedule);
    println!("accuracy {:.1}% | measured {:.3e} MACs/image\n", acc * 100.0, macs_per_image);
    print!("{}", render_table(&rows));
    println!(
        "\nper-layer JSON:\n{}",
        serde_json::to_string(&rows).expect("profile rows serialize")
    );

    // Self-checks: percentage columns close and the attribution agrees
    // with the analytic FLOPs model exactly.
    let mut failed = false;
    let time_sum: f64 = rows.iter().map(|r| r.time_pct).sum();
    let macs_sum: f64 = rows.iter().map(|r| r.macs_pct).sum();
    for (label, sum) in [("time%", time_sum), ("macs%", macs_sum)] {
        if (sum - 100.0).abs() > 0.1 {
            eprintln!("PROFILE FAIL: {label} column sums to {sum}, want 100±0.1");
            failed = true;
        }
    }
    let flops = analytic_flops(&shapes, &setting.schedule);
    for (row, layer) in rows.iter().zip(&flops.per_layer) {
        if row.attributed_macs != layer.pruned_macs {
            eprintln!(
                "PROFILE FAIL: layer {} attributed {} != analytic {}",
                row.layer, row.attributed_macs, layer.pruned_macs
            );
            failed = true;
        }
    }
    let attributed_total: f64 = rows.iter().map(|r| r.attributed_macs).sum();
    if attributed_total != flops.pruned_macs {
        eprintln!(
            "PROFILE FAIL: attributed total {attributed_total} != analytic {}",
            flops.pruned_macs
        );
        failed = true;
    }
    if rows.iter().any(|r| r.time_ns == 0) {
        eprintln!("PROFILE FAIL: some layers recorded no span time");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nprofile ok: {} layers, time%/macs% sum to 100, attribution exact",
        rows.len()
    );
}

/// Median wall time of `iters` dense forwards on `net`.
fn median_forward_ms(net: &mut dyn Network, input: &Tensor, iters: usize) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let _ = net.forward(input, antidote_nn::Mode::Eval);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    antidote_obs::percentile(&samples, 50.0)
}

/// Median wall time of `iters` dense forwards run the way a traced
/// serving request is: the thread-local span/counter collector active
/// around each forward, and one flight-recorder
/// [`antidote_obs::TraceRecord`] assembled and retained per iteration.
fn median_traced_forward_ms(net: &mut dyn Network, input: &Tensor, iters: usize) -> f64 {
    use antidote_obs::{TraceId, TraceRecord, TraceSpanRec};
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            antidote_obs::collect_begin();
            let _ = net.forward(input, antidote_nn::Mode::Eval);
            let collected = antidote_obs::collect_end();
            let mut rec = TraceRecord::new(&TraceId::mint().to_hex());
            if let Some(c) = collected {
                rec.spans = c
                    .spans
                    .iter()
                    .map(|s| TraceSpanRec {
                        name: s.name.clone(),
                        start_ns: s.start_ns,
                        dur_ns: s.dur_ns,
                    })
                    .collect();
                rec.counters = c.counters;
            }
            rec.total_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            antidote_obs::record_trace(rec);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    antidote_obs::percentile(&samples, 50.0)
}

/// `--overhead-smoke`: dense forwards with observability off, on, and
/// fully traced must stay within [`OVERHEAD_BOUND`] of the disabled
/// cost.
fn overhead_smoke() {
    let rw = ReproWorkload::for_workload(Workload::ResNet56Cifar10, Scale::Quick);
    assert!(matches!(rw.model, ModelKind::ResNetSmall { .. }));
    let mut net = rw.build_network(0x0B5);
    let size = rw.data.image_size;
    let input = Tensor::from_fn([4, 3, size, size], |i| ((i % 17) as f32 - 8.0) / 8.0);
    let iters = 9;
    // Warm-up (allocators, caches) before either timed pass.
    let _ = net.forward(&input, antidote_nn::Mode::Eval);

    antidote_obs::set_enabled(false);
    let off_ms = median_forward_ms(net.as_mut(), &input, iters);
    antidote_obs::set_enabled(true);
    antidote_obs::reset();
    let on_ms = median_forward_ms(net.as_mut(), &input, iters);
    let traced_ms = median_traced_forward_ms(net.as_mut(), &input, iters);
    let (recorded, _) = antidote_obs::recorder_counts();
    antidote_obs::clear_recorder();
    antidote_obs::set_enabled(false);

    let on_ratio = on_ms / off_ms.max(1e-9);
    let traced_ratio = traced_ms / off_ms.max(1e-9);
    println!(
        "overhead smoke: obs-off median {off_ms:.3} ms | obs-on median {on_ms:.3} ms (ratio {on_ratio:.3}) | traced median {traced_ms:.3} ms (ratio {traced_ratio:.3})"
    );
    let mut failed = false;
    for (label, ratio) in [("enabled", on_ratio), ("traced", traced_ratio)] {
        if ratio > OVERHEAD_BOUND {
            eprintln!(
                "OVERHEAD FAIL: {label}/disabled ratio {ratio:.3} exceeds {OVERHEAD_BOUND}"
            );
            failed = true;
        }
    }
    if recorded < iters as u64 {
        eprintln!(
            "OVERHEAD FAIL: flight recorder saw {recorded} records, want ≥ {iters} — the traced measurement did not exercise the recorder"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "overhead ok: enabled ratio {on_ratio:.3}, traced ratio {traced_ratio:.3} within bound {OVERHEAD_BOUND}"
    );
}
