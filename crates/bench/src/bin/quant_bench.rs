//! Int8 post-training quantization gate (ISSUE 5 acceptance bar).
//!
//! Two families of checks, both deterministic:
//!
//! 1. **Accuracy**: train a tiny VGG on the synthetic split, calibrate
//!    and quantize it (`core::quant`), then evaluate fp32 vs int8
//!    through the measured (masked-executor) path at several prune
//!    schedules — dense, channel-only, and channel+spatial. The int8
//!    top-1 must stay within [`ACC_TOL_PTS`] points of fp32 at *every*
//!    schedule, and both domains must report identical measured MACs
//!    (pruning composes with quantization exactly).
//! 2. **GEMM**: on the VGG-block shape `256×2304×784`, the int8 kernel
//!    must move strictly fewer bytes than fp32 (analytic model,
//!    `quant::gemm_min_bytes`), and on hosts with ≥ 4 hardware threads
//!    the wall-clock gate runs at a 4-thread budget: with the AVX2
//!    backend active int8 must **beat** f32 outright (the ISSUE 9
//!    regression bar); on lesser backends parity within [`WALL_TOL`]
//!    suffices. Hosts with fewer threads measure at their actual
//!    budget, label the report lines with that count, and skip the
//!    gate honestly — no fabricated `@4T` numbers. Wall-clock rows are
//!    also recorded for *every* supported kernel backend
//!    (`antidote_tensor::backend`), so `results/quant.{json,txt}` shows
//!    scalar vs SSE2 vs AVX2 side by side.
//!
//! `--smoke` exits non-zero on any violation; CI and `scripts/tier1.sh`
//! run it as the quantization regression gate. Results are also written
//! to `results/quant.json` and `results/quant.txt`.

use antidote_core::quant::{quantize_vgg, CalibrationMethod};
use antidote_core::trainer::{self, TrainConfig};
use antidote_core::{DynamicPruner, PruneSchedule};
use antidote_data::SynthConfig;
use antidote_models::{Vgg, VggConfig};
use antidote_tensor::backend::{self, Backend};
use antidote_tensor::linalg::matmul_into_on;
use antidote_tensor::quant::{gemm_i8_on, gemm_min_bytes};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

/// Maximum |fp32 − int8| top-1 gap, in accuracy points, per schedule.
const ACC_TOL_PTS: f64 = 1.0;

/// Int8 GEMM wall-clock tolerance vs fp32 at 4 threads (parity bar
/// with noise headroom; byte traffic must be strictly lower).
const WALL_TOL: f64 = 1.10;

/// The workspace's dominant serving GEMM: `256 filters × 256·3·3
/// columns × 28·28 positions`.
const M: usize = 256;
const K: usize = 2304;
const N: usize = 784;

/// Timing repetitions; the best rep is the noise-robust estimator.
const REPS: usize = 3;

fn fill_f32(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((s >> 33) as i32 % 1000) as f32 / 250.0 - 2.0;
            if v.abs() < 0.3 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

fn fill_i8(seed: u64, len: usize) -> Vec<i8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((s >> 33) % 255) as i32 - 127;
            if v.abs() < 20 {
                0
            } else {
                v as i8
            }
        })
        .collect()
}

#[derive(Serialize)]
struct ScheduleResult {
    name: &'static str,
    acc_fp32: f32,
    acc_int8: f32,
    delta_pts: f64,
    macs_per_image_fp32: f64,
    macs_per_image_int8: f64,
}

fn accuracy_sweep(failed: &mut bool) -> Vec<ScheduleResult> {
    let data = SynthConfig::tiny(3, 8).with_samples(40, 100).generate();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut vgg = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));
    let history = trainer::train(
        &mut vgg,
        &data,
        &mut antidote_models::NoopHook,
        &TrainConfig::fast_test(),
    );
    println!(
        "trained {} epochs, final train acc {:.3}",
        history.epochs.len(),
        history.final_train_acc()
    );

    // MinMax over a 4-batch slice was tuned empirically: widening the
    // calibration window or clipping via `Percentile` both *worsened*
    // at least one schedule here (the scales shift, near-tie attention
    // rankings flip, and the dynamic masks drift).
    let mut q = quantize_vgg(&mut vgg, &data.test, 16, 4, CalibrationMethod::MinMax);

    let schedules: Vec<(&'static str, PruneSchedule)> = vec![
        ("dense", PruneSchedule::none()),
        ("channel-0.3", PruneSchedule::channel_only(vec![0.3, 0.3])),
        (
            "channel-0.5+spatial-0.4",
            PruneSchedule::new(vec![0.5, 0.5], vec![0.4, 0.4]),
        ),
    ];
    let mut results = Vec::new();
    for (name, schedule) in schedules {
        let (acc_fp32, macs_fp32) = trainer::evaluate_measured(
            &mut vgg,
            &data.test,
            &mut DynamicPruner::new(schedule.clone()),
            16,
        );
        let (acc_int8, macs_int8) = trainer::evaluate_measured(
            &mut q,
            &data.test,
            &mut DynamicPruner::new(schedule),
            16,
        );
        let delta_pts = f64::from((acc_fp32 - acc_int8).abs()) * 100.0;
        println!(
            "{name:>24}: fp32 {:.4} | int8 {:.4} | delta {delta_pts:.2} pts | MACs/img fp32 {macs_fp32:.0} int8 {macs_int8:.0}",
            acc_fp32, acc_int8
        );
        if delta_pts > ACC_TOL_PTS {
            eprintln!("FAIL: {name}: int8 accuracy strays {delta_pts:.2} pts (> {ACC_TOL_PTS})");
            *failed = true;
        }
        // Dense runs use no masks, so the measured MACs must match
        // exactly. Under a prune schedule the masks are *data-dependent*
        // (attention top-k over feature values), and quantization can
        // flip near-tie rankings, so the two domains may pick slightly
        // different masks; identical-mask MAC equality is pinned by
        // `nn/tests/quant_equivalence.rs`, and here we only require the
        // measured costs to stay within a small relative band.
        let mac_gap = (macs_fp32 - macs_int8).abs();
        let mac_ok = if name == "dense" {
            mac_gap < 1e-9
        } else {
            mac_gap / macs_fp32.max(1.0) <= 0.01
        };
        if !mac_ok {
            eprintln!(
                "FAIL: {name}: measured MACs diverge (fp32 {macs_fp32} vs int8 {macs_int8})"
            );
            *failed = true;
        }
        results.push(ScheduleResult {
            name,
            acc_fp32,
            acc_int8,
            delta_pts,
            macs_per_image_fp32: macs_fp32,
            macs_per_image_int8: macs_int8,
        });
    }
    results
}

/// One wall-clock measurement pair for a specific kernel backend.
#[derive(Serialize)]
struct BackendRow {
    backend: &'static str,
    wall_ms_f32: f64,
    wall_ms_int8: f64,
}

#[derive(Serialize)]
struct GemmResult {
    shape: [usize; 3],
    bytes_f32: u64,
    bytes_i8: u64,
    /// Thread budget the wall-clock numbers were measured at — the
    /// host's actual core count capped at 4, never a fabricated `4`.
    threads_used: usize,
    /// The backend the gate judged (the process-active one).
    backend: &'static str,
    wall_ms_f32: f64,
    wall_ms_int8: f64,
    /// Which wall-clock bar applied: `beat` (AVX2, ≥4 threads: int8
    /// strictly faster), `parity` (≥4 threads, lesser backend: within
    /// [`WALL_TOL`]), or `skipped` (<4 hardware threads).
    wall_gate: &'static str,
    per_backend: Vec<BackendRow>,
}

#[derive(Serialize)]
struct QuantReport {
    acc_tol_pts: f64,
    wall_tol: f64,
    schedules: Vec<ScheduleResult>,
    gemm: GemmResult,
    passed: bool,
}

/// Best-of-[`REPS`] wall time of the f32 GEMM on `be` at the current
/// thread budget.
fn time_f32_on(be: Backend, a: &[f32], b: &[f32]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut c = vec![0.0f32; M * N];
        let t0 = Instant::now();
        matmul_into_on(be, a, b, &mut c, M, K, N);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-[`REPS`] wall time of the int8 GEMM on `be` at the current
/// thread budget.
fn time_i8_on(be: Backend, a: &[i8], b: &[i8]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut c = vec![0i32; M * N];
        let t0 = Instant::now();
        gemm_i8_on(be, a, b, &mut c, M, K, N);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gemm_gate(failed: &mut bool) -> GemmResult {
    let cores = antidote_par::available();
    let threads_used = cores.min(4);
    let active = backend::active();
    let bytes_f32 = gemm_min_bytes(M, K, N, 4);
    let bytes_i8 = gemm_min_bytes(M, K, N, 1);
    println!(
        "GEMM {M}x{K}x{N}: min bytes f32 {bytes_f32} | int8 {bytes_i8} ({:.2}x less)",
        bytes_f32 as f64 / bytes_i8 as f64
    );
    if bytes_i8 >= bytes_f32 {
        eprintln!("FAIL: int8 GEMM does not reduce byte traffic");
        *failed = true;
    }

    let af = fill_f32(17, M * K);
    let bf = fill_f32(23, K * N);
    let ai = fill_i8(17, M * K);
    let bi = fill_i8(23, K * N);

    // Wall-clock rows for every supported backend at the host's real
    // budget (capped at 4 to match the gate's bar). The active
    // backend's row doubles as the gate measurement.
    antidote_par::set_threads(threads_used);
    let mut per_backend = Vec::new();
    let (mut t_f32, mut t_i8) = (f64::NAN, f64::NAN);
    for be in Backend::supported() {
        let tf = time_f32_on(be, &af, &bf);
        let ti = time_i8_on(be, &ai, &bi);
        println!(
            "  [{:>6}] @{threads_used}T: f32 {:7.1} ms | int8 {:7.1} ms ({:.2}x)",
            be.name(),
            tf * 1e3,
            ti * 1e3,
            tf / ti
        );
        if be == active {
            t_f32 = tf;
            t_i8 = ti;
        }
        per_backend.push(BackendRow {
            backend: be.name(),
            wall_ms_f32: tf * 1e3,
            wall_ms_int8: ti * 1e3,
        });
    }
    antidote_par::set_threads(1);
    println!(
        "GEMM wall clock @{threads_used}T on active backend `{active}`: f32 {:.1} ms | int8 {:.1} ms ({:.2}x)",
        t_f32 * 1e3,
        t_i8 * 1e3,
        t_f32 / t_i8
    );
    let wall_gate = if cores < 4 {
        println!(
            "wall clock: SKIPPED (host has {cores} hardware thread(s) < 4; byte gate still ran)"
        );
        "skipped"
    } else if active == Backend::Avx2 {
        // The ISSUE 9 regression bar: with SIMD int8 kernels, int8 must
        // be strictly *faster* than f32 at the serving thread budget.
        if t_i8 >= t_f32 {
            eprintln!(
                "FAIL: int8 GEMM {:.1} ms does not beat f32 {:.1} ms on the AVX2 backend",
                t_i8 * 1e3,
                t_f32 * 1e3
            );
            *failed = true;
        } else {
            println!("wall clock: OK (int8 beats f32 on the AVX2 backend)");
        }
        "beat"
    } else {
        if t_i8 > t_f32 * WALL_TOL {
            eprintln!(
                "FAIL: int8 GEMM {:.1} ms misses wall-clock parity vs f32 {:.1} ms (tol {WALL_TOL}x)",
                t_i8 * 1e3,
                t_f32 * 1e3
            );
            *failed = true;
        } else {
            println!(
                "wall clock: OK (int8 within {WALL_TOL}x of f32 on `{active}`; beat gate needs avx2)"
            );
        }
        "parity"
    };
    GemmResult {
        shape: [M, K, N],
        bytes_f32,
        bytes_i8,
        threads_used,
        backend: active.name(),
        wall_ms_f32: t_f32 * 1e3,
        wall_ms_int8: t_i8 * 1e3,
        wall_gate,
        per_backend,
    }
}

fn write_results(schedules: Vec<ScheduleResult>, gemm: GemmResult, failed: bool) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut txt = String::new();
    txt.push_str("quant_bench: int8 post-training quantization gate\n\n");
    txt.push_str("schedule                  fp32-acc  int8-acc  delta(pts)  MACs/img\n");
    for s in &schedules {
        txt.push_str(&format!(
            "{:<24}  {:>8.4}  {:>8.4}  {:>10.2}  {:>10.0}\n",
            s.name, s.acc_fp32, s.acc_int8, s.delta_pts, s.macs_per_image_int8
        ));
    }
    txt.push_str(&format!(
        "\nGEMM {M}x{K}x{N}: bytes f32 {} -> int8 {} ({:.2}x less)\n",
        gemm.bytes_f32,
        gemm.bytes_i8,
        gemm.bytes_f32 as f64 / gemm.bytes_i8 as f64
    ));
    // The wall-clock lines are labeled with the thread budget the
    // numbers were actually measured at; a host below 4 cores reports
    // its real (capped) budget plus a skip marker instead of
    // pretending the gate ran at 4 threads.
    let t = gemm.threads_used;
    txt.push_str(&format!(
        "wall clock @{t}T (backend {}): f32 {:.1} ms, int8 {:.1} ms ({:.2}x){}\n",
        gemm.backend,
        gemm.wall_ms_f32,
        gemm.wall_ms_int8,
        gemm.wall_ms_f32 / gemm.wall_ms_int8,
        match gemm.wall_gate {
            "beat" => " [gate: int8 must beat f32]",
            "parity" => " [gate: parity within tolerance]",
            _ => " [gate skipped: <4 cores]",
        }
    ));
    txt.push_str(&format!("\nper-backend wall clock @{t}T:\n"));
    for row in &gemm.per_backend {
        txt.push_str(&format!(
            "  {:<8}  f32 {:>7.1} ms  int8 {:>7.1} ms  ({:.2}x)\n",
            row.backend,
            row.wall_ms_f32,
            row.wall_ms_int8,
            row.wall_ms_f32 / row.wall_ms_int8
        ));
    }
    txt.push_str(if failed { "\nRESULT: FAIL\n" } else { "\nRESULT: PASS\n" });
    antidote_bench::atomic_write(&dir, "quant.txt", &txt);

    let report = QuantReport {
        acc_tol_pts: ACC_TOL_PTS,
        wall_tol: WALL_TOL,
        schedules,
        gemm,
        passed: !failed,
    };
    antidote_bench::atomic_write(
        &dir,
        "quant.json",
        &serde_json::to_string_pretty(&report).unwrap_or_default(),
    );
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    antidote_obs::init_from_env();
    println!(
        "quant_bench ({}): accuracy sweep + GEMM byte/wall gates",
        if smoke { "smoke" } else { "full" }
    );

    let mut failed = false;
    let schedules = accuracy_sweep(&mut failed);
    let gemm = gemm_gate(&mut failed);
    write_results(schedules, gemm, failed);

    if failed {
        ExitCode::FAILURE
    } else {
        println!("quant_bench: all gates passed");
        ExitCode::SUCCESS
    }
}
