//! Regenerates **Fig. 2**: accuracy drop of attention-based vs random vs
//! inverse-attention dynamic channel pruning on the last block of a VGG
//! and a ResNet (plus the spatial-column variant the paper mentions in
//! Sec. III-C).
//!
//! Usage: `cargo run -p antidote-bench --bin fig2 --release`

use antidote_bench::{ReproWorkload, Scale};
use antidote_core::analysis::{criteria_comparison, criteria_comparison_spatial, SweepCurve};
use antidote_core::report::{ExperimentReport, ExperimentRow};
use antidote_core::settings::Workload;
use antidote_core::trainer::{train, TrainConfig};
use antidote_models::NoopHook;

fn print_curves(title: &str, curves: &[SweepCurve]) {
    println!("-- {title} --");
    print!("{:>10}", "ratio");
    for c in curves {
        print!("{:>12}", c.label);
    }
    println!();
    for (i, &r) in curves[0].ratios.iter().enumerate() {
        print!("{r:>10.2}");
        for c in curves {
            print!("{:>11.1}%", c.accuracy[i] * 100.0);
        }
        println!();
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();
    println!("== AntiDote reproduction: Fig. 2 (criterion comparison, scale {scale:?}) ==\n");
    let ratios: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
    let mut report = ExperimentReport::new("fig2");

    for workload in [Workload::Vgg16Cifar10, Workload::ResNet56Cifar10] {
        let rw = ReproWorkload::for_workload(workload, scale);
        let data = rw.data.generate();
        let mut net = rw.build_network(0xF16);
        let cfg = TrainConfig {
            epochs: rw.epochs,
            batch_size: rw.batch_size,
            ..TrainConfig::default()
        };
        train(net.as_mut(), &data, &mut NoopHook, &cfg);
        let last_block = rw.block_count() - 1;
        let curves = criteria_comparison(
            net.as_mut(),
            &data.test,
            rw.block_count(),
            last_block,
            &ratios,
            rw.batch_size,
        );
        print_curves(
            &format!("{} — channel pruning, last block", workload.name()),
            &curves,
        );
        let base = curves[0].accuracy[0] as f64 * 100.0;
        for c in &curves {
            for (i, &r) in c.ratios.iter().enumerate() {
                report.rows.push(ExperimentRow {
                    experiment: "fig2".into(),
                    workload: workload.name().into(),
                    method: format!("{} r={r:.1}", c.label),
                    baseline_acc_pct: base,
                    final_acc_pct: c.accuracy[i] as f64 * 100.0,
                    baseline_flops: f64::NAN,
                    final_flops: f64::NAN,
                    flops_reduction_pct: r * 100.0,
                    paper_reduction_pct: f64::NAN,
                    paper_accuracy_drop_pct: f64::NAN,
                });
            }
        }

        // Expected shape (paper Sec. III-C): attention >= random >=
        // inverse at moderate ratios.
        let at = |curves: &[SweepCurve], label: &str, i: usize| {
            curves
                .iter()
                .find(|c| c.label == label)
                .map(|c| c.accuracy[i])
                .unwrap_or(0.0)
        };
        let mid = ratios.len() / 2;
        println!(
            "  shape check @ratio {:.1}: attention {:.1}% | random {:.1}% | inverse {:.1}%\n",
            ratios[mid],
            at(&curves, "attention", mid) * 100.0,
            at(&curves, "random", mid) * 100.0,
            at(&curves, "inverse", mid) * 100.0,
        );

        // Spatial variant (Sec. III-C closing remark).
        let sp_curves = criteria_comparison_spatial(
            net.as_mut(),
            &data.test,
            rw.block_count(),
            0, // early block: larger spatial maps, like the paper's spatial experiments
            &ratios,
            rw.batch_size,
        );
        print_curves(
            &format!("{} — spatial-column pruning, first block", workload.name()),
            &sp_curves,
        );

        // Ablation (DESIGN.md §6): mean vs max attention statistic on the
        // same block.
        let ab = antidote_core::ablation::statistic_ablation(
            net.as_mut(),
            &data.test,
            rw.block_count(),
            last_block,
            &ratios,
            rw.batch_size,
        );
        print_curves(
            &format!("{} — ablation: attention statistic (mean vs max)", workload.name()),
            &ab,
        );
    }
    antidote_bench::write_report(&report, "fig2");
    println!("report written to results/fig2.json");
}
