//! Regenerates **Fig. 3**: block sensitivity analysis — accuracy vs
//! per-block channel pruning ratio, one curve per block, for VGG and
//! ResNet. The per-block TTD upper bounds are read off these curves
//! (Sec. IV-B).
//!
//! Usage: `cargo run -p antidote-bench --bin fig3 --release`

use antidote_bench::{ReproWorkload, Scale};
use antidote_core::analysis::{block_sensitivity, block_sensitivity_spatial};
use antidote_core::report::{ExperimentReport, ExperimentRow};
use antidote_core::settings::Workload;
use antidote_core::trainer::{train, TrainConfig};
use antidote_models::NoopHook;

fn main() {
    let scale = Scale::from_env();
    println!("== AntiDote reproduction: Fig. 3 (block sensitivity, scale {scale:?}) ==\n");
    let ratios: Vec<f64> = vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut report = ExperimentReport::new("fig3");

    for workload in [Workload::Vgg16Cifar10, Workload::ResNet56Cifar10] {
        let rw = ReproWorkload::for_workload(workload, scale);
        let data = rw.data.generate();
        let mut net = rw.build_network(0xF13);
        let cfg = TrainConfig {
            epochs: rw.epochs,
            batch_size: rw.batch_size,
            ..TrainConfig::default()
        };
        train(net.as_mut(), &data, &mut NoopHook, &cfg);

        let curves = block_sensitivity(
            net.as_mut(),
            &data.test,
            rw.block_count(),
            &ratios,
            rw.batch_size,
        );
        println!("-- {} — channel-pruning sensitivity per block --", workload.name());
        print!("{:>10}", "ratio");
        for c in &curves {
            print!("{:>10}", c.label);
        }
        println!();
        for (i, &r) in ratios.iter().enumerate() {
            print!("{r:>10.2}");
            for c in &curves {
                print!("{:>9.1}%", c.accuracy[i] * 100.0);
            }
            println!();
        }
        // Shape check: the deepest block should tolerate pruning at least
        // as well as the first block at high ratios (paper: later VGG
        // blocks carry more redundancy).
        let hi = ratios.len() - 2;
        println!(
            "  shape check @ratio {:.1}: first block {:.1}% vs last block {:.1}%\n",
            ratios[hi],
            curves.first().unwrap().accuracy[hi] * 100.0,
            curves.last().unwrap().accuracy[hi] * 100.0,
        );
        let base = curves[0].accuracy[0] as f64 * 100.0;
        for c in &curves {
            for (i, &r) in c.ratios.iter().enumerate() {
                report.rows.push(ExperimentRow {
                    experiment: "fig3".into(),
                    workload: workload.name().into(),
                    method: format!("{} r={r:.1}", c.label),
                    baseline_acc_pct: base,
                    final_acc_pct: c.accuracy[i] as f64 * 100.0,
                    baseline_flops: f64::NAN,
                    final_flops: f64::NAN,
                    flops_reduction_pct: r * 100.0,
                    paper_reduction_pct: f64::NAN,
                    paper_accuracy_drop_pct: f64::NAN,
                });
            }
        }

        // ResNet: the paper sets *spatial* ratios per group too.
        if workload == Workload::ResNet56Cifar10 {
            let sp = block_sensitivity_spatial(
                net.as_mut(),
                &data.test,
                rw.block_count(),
                &ratios,
                rw.batch_size,
            );
            println!("-- {} — spatial-pruning sensitivity per group --", workload.name());
            for (i, &r) in ratios.iter().enumerate() {
                print!("{r:>10.2}");
                for c in &sp {
                    print!("{:>9.1}%", c.accuracy[i] * 100.0);
                }
                println!();
            }
            println!();
        }
    }
    antidote_bench::write_report(&report, "fig3");
    println!("report written to results/fig3.json");
}
