//! Open-loop load generator for the `antidote-serve` engine.
//!
//! Replays a seeded steady arrival trace (`antidote_bench::trace`, the
//! same generator `overload_bench` uses) against an untrained
//! `vgg_tiny` replica pool. Requests cycle through four budget tiers —
//! unbudgeted, loose, medium, and near the schedule floor — so every
//! batch the micro-batcher forms is heterogeneous. The arrival rate is
//! calibrated to a fraction of the engine's measured capacity, so the
//! run exercises batching and budget planning without tipping into the
//! overload regimes covered by `overload_bench`.
//!
//! Output: a human-readable summary plus the full
//! [`antidote_serve::ServeMetrics`] JSON on stdout.
//!
//! Knobs (all `warn-and-ignore` on parse failure):
//!
//! - engine: `ANTIDOTE_SERVE_WORKERS`, `ANTIDOTE_SERVE_MAX_BATCH`,
//!   `ANTIDOTE_SERVE_MAX_WAIT_MS`, `ANTIDOTE_SERVE_QUEUE_CAP`,
//!   `ANTIDOTE_SERVE_DEADLINE_MS`, `ANTIDOTE_SERVE_QUANT`
//!   (`off`/`int8` — int8-quantized replicas; see
//!   `ServeConfig::from_env`);
//! - load: `ANTIDOTE_SERVE_BENCH_REQUESTS` (total arrivals),
//!   `ANTIDOTE_SERVE_BENCH_SEED`.
//!
//! `--smoke` runs a small deterministic workload and exits non-zero if
//! any request fails or any budget is exceeded — CI uses it as the
//! serving-path regression gate. Without `--smoke` the same trace is
//! replayed on 1 worker and on the configured worker count, and the
//! goodput/latency comparison is reported.

use antidote_bench::trace::{
    generate, mean_service_ms, replay, ArrivalProcess, ClassMix, PhaseSpec, RequestClass,
};
use antidote_core::quant::{calibrate, CalibrationMethod};
use antidote_core::PruneSchedule;
use antidote_data::Split;
use antidote_models::{QuantizedVgg, Vgg, VggConfig};
use antidote_serve::{
    percentile, ModelFactory, Priority, QuantMode, ServeConfig, ServeEngine, ServeMetrics,
};
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Synthetic model served by the benchmark: a deterministic, untrained
/// `vgg_tiny` — serving cost and mask behaviour are what matter here,
/// not accuracy. 64x64 inputs make one forward pass cost a meaningful
/// fraction of the batch window, so worker-count effects are visible.
const IMAGE_SIZE: usize = 64;
const CLASSES: usize = 4;

/// Every request carries a generous deadline: this benchmark measures
/// the happy path, not SLO enforcement.
const DEADLINE_MS: u64 = 5000;

fn fresh_vgg(seed: u64) -> Vgg {
    let mut rng = SmallRng::seed_from_u64(seed);
    Vgg::new(&mut rng, VggConfig::vgg_tiny(IMAGE_SIZE, CLASSES))
}

/// Replica factory honoring `ANTIDOTE_SERVE_QUANT`: fp32 replicas by
/// default, int8 `QuantizedVgg` replicas when the mode says so. Int8
/// calibration runs once up front on a deterministic synthetic split
/// matching the load generator's input distribution, so every worker
/// quantizes against identical scales (replicas must stay identical).
fn factory(seed: u64, quant: QuantMode) -> ModelFactory {
    match quant {
        QuantMode::Off => Arc::new(move |_worker| Box::new(fresh_vgg(seed))),
        QuantMode::Int8 => {
            let calib_split = Split {
                images: Tensor::from_fn([8, 3, IMAGE_SIZE, IMAGE_SIZE], |i| {
                    (i as f32 * 0.379).sin() * 0.5
                }),
                labels: vec![0; 8],
            };
            let calib = calibrate(
                &mut fresh_vgg(seed),
                &calib_split,
                4,
                2,
                CalibrationMethod::MinMax,
            );
            Arc::new(move |_worker| {
                Box::new(QuantizedVgg::from_vgg(
                    &fresh_vgg(seed),
                    calib.input_scale,
                    &calib.tap_scales,
                ))
            })
        }
    }
}

use antidote_obs::env::parse_or as parse_env;

/// The four budget tiers, expressed as floor→dense fractions and
/// equally weighted in the mix — every batch window sees a spread of
/// schedule scales.
fn tier_mix() -> ClassMix {
    let tier = |name: &'static str, budget_frac: Option<f64>| RequestClass {
        name,
        priority: Priority::Standard,
        budget_frac,
        deadline_ms: DEADLINE_MS,
    };
    ClassMix::new(vec![
        (tier("dense", None), 1.0),
        (tier("loose", Some(0.9)), 1.0),
        (tier("medium", Some(0.5)), 1.0),
        (tier("near-floor", Some(0.05)), 1.0),
    ])
}

fn input(i: usize) -> Tensor {
    Tensor::from_fn([3, IMAGE_SIZE, IMAGE_SIZE], move |j| {
        ((i * 193 + j * 7) % 23) as f32 * 0.04 - 0.44
    })
}

struct LoadOutcome {
    metrics: ServeMetrics,
    /// Wall-clock completion rate over the trace duration.
    goodput_rps: f64,
    p99_ms: f64,
    /// (budget, achieved) pairs for every budgeted completion.
    budget_pairs: Vec<(f64, f64)>,
    offered: usize,
    errors: Vec<String>,
}

/// Replays the phase list's trace on a fresh engine.
fn run_load(cfg: ServeConfig, seed: u64, phases: &[PhaseSpec]) -> LoadOutcome {
    let quant = cfg.quant;
    let engine = ServeEngine::start(cfg, factory(seed, quant)).expect("engine start");
    let handle = engine.handle();
    let trace = generate(phases, seed);
    let start = std::time::Instant::now();
    let outcomes = replay(&handle, &trace, input);
    let elapsed = start.elapsed();
    let metrics = engine.shutdown();

    let mut budget_pairs = Vec::new();
    let mut errors = Vec::new();
    let mut latencies = Vec::new();
    for (i, o) in outcomes.iter().enumerate() {
        match &o.result {
            Ok(resp) => {
                if let Some(b) = resp.budget {
                    budget_pairs.push((b, resp.achieved_macs));
                }
                latencies.push(resp.latency.as_secs_f64() * 1e3);
            }
            Err(e) => errors.push(format!("request {i} ({}): {e}", o.class.name)),
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    LoadOutcome {
        goodput_rps: metrics.completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p99_ms: percentile(&latencies, 99.0),
        metrics,
        budget_pairs,
        offered: outcomes.len(),
        errors,
    }
}

fn print_summary(label: &str, out: &LoadOutcome) {
    println!("--- {label} ---");
    println!("offered {} | goodput {:.1} req/s", out.offered, out.goodput_rps);
    // The per-snapshot shape is shared with http_bench and /metrics
    // consumers via `ServeMetrics::summary_line`.
    println!("{}", out.metrics.summary_line());
}

fn main() {
    antidote_obs::init_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests: usize =
        parse_env("ANTIDOTE_SERVE_BENCH_REQUESTS", if smoke { 24usize } else { 96 });
    let seed: u64 = parse_env("ANTIDOTE_SERVE_BENCH_SEED", 42u64);
    let mut cfg = ServeConfig {
        workers: 4,
        max_batch: 8,
        max_wait: Duration::from_millis(4),
        // The trace rate is calibrated below capacity, so the queue
        // only needs headroom for batching jitter.
        queue_capacity: 64,
        base_schedule: PruneSchedule::channel_only(vec![0.6, 0.6]),
        ..ServeConfig::default()
    }
    .with_env_overrides();
    // Replica kills belong to overload_bench's chaos phase; this
    // benchmark gates the happy path.
    cfg.chaos = None;

    // Calibrate the arrival rate to the pool's measured capacity so the
    // trace loads the batcher without tipping into overload.
    let calib_engine =
        ServeEngine::start(cfg.clone(), factory(seed, cfg.quant)).expect("engine start");
    let service_ms = mean_service_ms(&calib_engine.handle(), &input(0), 4);
    calib_engine.shutdown();
    let capacity_rps = cfg.workers as f64 * 1e3 / service_ms.max(1e-3);
    let rps = 0.6 * capacity_rps;
    let duration = Duration::from_secs_f64((requests as f64 / rps).max(0.05));
    println!(
        "calibrated: service {service_ms:.2}ms, capacity {capacity_rps:.1} req/s -> steady {rps:.1} req/s for {:.2}s",
        duration.as_secs_f64()
    );
    let phases = vec![PhaseSpec {
        name: "steady",
        process: ArrivalProcess::Steady { rps },
        duration,
        mix: tier_mix(),
    }];

    if smoke {
        let out = run_load(cfg, seed, &phases);
        print_summary("smoke", &out);
        println!("{}", out.metrics.to_json());
        let mut failed = false;
        if out.metrics.completed == 0 || out.metrics.completed as usize != out.offered {
            eprintln!(
                "SMOKE FAIL: completed {} of {} offered requests",
                out.metrics.completed, out.offered
            );
            failed = true;
        }
        if !out.errors.is_empty() {
            for e in &out.errors {
                eprintln!("SMOKE FAIL: unexpected error: {e}");
            }
            failed = true;
        }
        for (budget, achieved) in &out.budget_pairs {
            if achieved > budget {
                eprintln!("SMOKE FAIL: achieved MACs {achieved} exceeds budget {budget}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "smoke ok: {} completions, 0 unexpected errors",
            out.metrics.completed
        );
        return;
    }

    // Full mode: the same seeded trace on 1 worker vs the configured
    // pool. The single worker saturates (typed sheds/expiries are
    // expected and acceptable there); the pool should absorb the load.
    let single = run_load(
        ServeConfig {
            workers: 1,
            ..cfg.clone()
        },
        seed,
        &phases,
    );
    print_summary("1 worker", &single);
    let pooled = run_load(cfg.clone(), seed, &phases);
    print_summary(&format!("{} workers", cfg.workers), &pooled);
    println!(
        "goodput: {:.2}x ({:.1} -> {:.1} req/s) | p99 {:.1}ms -> {:.1}ms",
        pooled.goodput_rps / single.goodput_rps.max(1e-9),
        single.goodput_rps,
        pooled.goodput_rps,
        single.p99_ms,
        pooled.p99_ms,
    );
    println!("{}", pooled.metrics.to_json());
}
