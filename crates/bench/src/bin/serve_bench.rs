//! Closed-loop load generator for the `antidote-serve` engine.
//!
//! Spawns `C` client threads, each submitting `R` requests back-to-back
//! (a new request as soon as the previous response lands) against a
//! seeded, untrained `vgg_tiny` replica pool. Requests cycle through
//! four budget tiers — unbudgeted, loose, medium, and near the schedule
//! floor — so every batch the micro-batcher forms is heterogeneous.
//!
//! Output: a human-readable summary plus the full
//! [`antidote_serve::ServeMetrics`] JSON on stdout.
//!
//! Knobs (all `warn-and-ignore` on parse failure):
//!
//! - engine: `ANTIDOTE_SERVE_WORKERS`, `ANTIDOTE_SERVE_MAX_BATCH`,
//!   `ANTIDOTE_SERVE_MAX_WAIT_MS`, `ANTIDOTE_SERVE_QUEUE_CAP`,
//!   `ANTIDOTE_SERVE_DEADLINE_MS`, `ANTIDOTE_SERVE_QUANT`
//!   (`off`/`int8` — int8-quantized replicas; see
//!   `ServeConfig::from_env`);
//! - load: `ANTIDOTE_SERVE_BENCH_CLIENTS`,
//!   `ANTIDOTE_SERVE_BENCH_REQUESTS` (per client),
//!   `ANTIDOTE_SERVE_BENCH_SEED`.
//!
//! `--smoke` runs a small deterministic workload and exits non-zero if
//! any request fails or anything other than a clean completion occurs —
//! CI uses it as the serving-path regression gate. Without `--smoke`
//! the same workload runs twice, on 1 worker and on the configured
//! worker count, and reports the throughput speedup.

use antidote_core::quant::{calibrate, CalibrationMethod};
use antidote_core::PruneSchedule;
use antidote_data::Split;
use antidote_models::{QuantizedVgg, Vgg, VggConfig};
use antidote_serve::{
    InferRequest, ModelFactory, QuantMode, ServeConfig, ServeEngine, ServeMetrics,
};
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Synthetic model served by the benchmark: a deterministic, untrained
/// `vgg_tiny` — serving cost and mask behaviour are what matter here,
/// not accuracy. 64x64 inputs make one forward pass cost a meaningful
/// fraction of the batch window, so worker-count effects are visible.
const IMAGE_SIZE: usize = 64;
const CLASSES: usize = 4;

fn fresh_vgg(seed: u64) -> Vgg {
    let mut rng = SmallRng::seed_from_u64(seed);
    Vgg::new(&mut rng, VggConfig::vgg_tiny(IMAGE_SIZE, CLASSES))
}

/// Replica factory honoring `ANTIDOTE_SERVE_QUANT`: fp32 replicas by
/// default, int8 `QuantizedVgg` replicas when the mode says so. Int8
/// calibration runs once up front on a deterministic synthetic split
/// matching the load generator's input distribution, so every worker
/// quantizes against identical scales (replicas must stay identical).
fn factory(seed: u64, quant: QuantMode) -> ModelFactory {
    match quant {
        QuantMode::Off => Arc::new(move |_worker| Box::new(fresh_vgg(seed))),
        QuantMode::Int8 => {
            let calib_split = Split {
                images: Tensor::from_fn([8, 3, IMAGE_SIZE, IMAGE_SIZE], |i| {
                    (i as f32 * 0.379).sin() * 0.5
                }),
                labels: vec![0; 8],
            };
            let calib = calibrate(
                &mut fresh_vgg(seed),
                &calib_split,
                4,
                2,
                CalibrationMethod::MinMax,
            );
            Arc::new(move |_worker| {
                Box::new(QuantizedVgg::from_vgg(
                    &fresh_vgg(seed),
                    calib.input_scale,
                    &calib.tap_scales,
                ))
            })
        }
    }
}

use antidote_obs::env::parse_or as parse_env;

#[derive(Clone, Copy)]
struct LoadSpec {
    clients: usize,
    requests_per_client: usize,
    seed: u64,
}

struct LoadOutcome {
    metrics: ServeMetrics,
    /// Wall-clock request rate observed by the clients (completed / s).
    throughput_rps: f64,
    /// (budget, achieved) pairs for every budgeted completion.
    budget_pairs: Vec<(f64, f64)>,
    errors: Vec<String>,
}

/// Budget tiers cycled per request: `None` (dense), loose, medium, and
/// near-floor, interpolated between the mapper's floor and dense costs.
fn budget_for(tier: usize, floor: f64, dense: f64) -> Option<f64> {
    let lerp = |f: f64| floor + f * (dense - floor);
    match tier % 4 {
        0 => None,
        1 => Some(lerp(0.9)),
        2 => Some(lerp(0.5)),
        _ => Some(lerp(0.05)),
    }
}

fn run_load(cfg: ServeConfig, spec: LoadSpec) -> LoadOutcome {
    let quant = cfg.quant;
    let engine = ServeEngine::start(cfg, factory(spec.seed, quant)).expect("engine start");
    let handle = engine.handle();
    let floor = handle.floor_macs();
    let dense = handle.dense_macs();
    let start = std::time::Instant::now();
    let clients: Vec<_> = (0..spec.clients)
        .map(|c| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(spec.seed + 1 + c as u64);
                let mut pairs = Vec::new();
                let mut errors = Vec::new();
                for r in 0..spec.requests_per_client {
                    let input = Tensor::from_fn([3, IMAGE_SIZE, IMAGE_SIZE], |_| {
                        rng.gen::<f32>() - 0.5
                    });
                    let budget = budget_for(c + r, floor, dense);
                    let mut req = InferRequest::new(input);
                    if let Some(b) = budget {
                        req = req.with_budget(b);
                    }
                    // Closed loop: block on the response before the next
                    // submission.
                    match handle.submit(req).and_then(|p| p.wait()) {
                        Ok(resp) => {
                            if let Some(b) = budget {
                                pairs.push((b, resp.achieved_macs));
                            }
                        }
                        Err(e) => errors.push(format!("client {c} request {r}: {e}")),
                    }
                }
                (pairs, errors)
            })
        })
        .collect();
    let mut budget_pairs = Vec::new();
    let mut errors = Vec::new();
    for client in clients {
        let (pairs, errs) = client.join().expect("client thread panicked");
        budget_pairs.extend(pairs);
        errors.extend(errs);
    }
    let elapsed = start.elapsed();
    let metrics = engine.shutdown();
    let throughput_rps = metrics.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    LoadOutcome {
        metrics,
        throughput_rps,
        budget_pairs,
        errors,
    }
}

fn print_summary(label: &str, out: &LoadOutcome) {
    let m = &out.metrics;
    println!("--- {label} ---");
    println!(
        "completed {} | rejected {} | expired {} | infeasible {} | panicked {}",
        m.completed, m.rejected_full, m.expired, m.infeasible, m.panicked
    );
    println!(
        "throughput {:.1} req/s | mean batch {:.2} | latency p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms",
        out.throughput_rps, m.mean_batch_size, m.latency.p50_ms, m.latency.p95_ms, m.latency.p99_ms
    );
    println!(
        "budgeted {} | mean budget utilization {:.3} | max {:.3}",
        m.budget.budgeted_requests, m.budget.mean_utilization, m.budget.max_utilization
    );
}

fn main() {
    antidote_obs::init_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = LoadSpec {
        clients: parse_env("ANTIDOTE_SERVE_BENCH_CLIENTS", 3usize),
        requests_per_client: parse_env(
            "ANTIDOTE_SERVE_BENCH_REQUESTS",
            if smoke { 8usize } else { 32 },
        ),
        seed: parse_env("ANTIDOTE_SERVE_BENCH_SEED", 42u64),
    };
    let cfg = ServeConfig {
        workers: 4,
        max_batch: 8,
        max_wait: Duration::from_millis(4),
        // Closed-loop clients bound in-flight requests, so the queue
        // only needs headroom for one round per client.
        queue_capacity: 64,
        base_schedule: PruneSchedule::channel_only(vec![0.6, 0.6]),
        ..ServeConfig::default()
    }
    .with_env_overrides();

    if smoke {
        let out = run_load(cfg, spec);
        print_summary("smoke", &out);
        println!("{}", out.metrics.to_json());
        let expected = (spec.clients * spec.requests_per_client) as u64;
        let mut failed = false;
        if out.metrics.completed == 0 || out.metrics.completed != expected {
            eprintln!(
                "SMOKE FAIL: completed {} of {expected} requests",
                out.metrics.completed
            );
            failed = true;
        }
        if !out.errors.is_empty() {
            for e in &out.errors {
                eprintln!("SMOKE FAIL: unexpected error: {e}");
            }
            failed = true;
        }
        for (budget, achieved) in &out.budget_pairs {
            if achieved > budget {
                eprintln!("SMOKE FAIL: achieved MACs {achieved} exceeds budget {budget}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("smoke ok: {} completions, 0 unexpected errors", out.metrics.completed);
        return;
    }

    // Full mode: same seeded workload on 1 worker vs the configured
    // pool, reporting the coalescing-overlap speedup.
    let single = run_load(
        ServeConfig {
            workers: 1,
            ..cfg.clone()
        },
        spec,
    );
    print_summary("1 worker", &single);
    let pooled = run_load(cfg.clone(), spec);
    print_summary(&format!("{} workers", cfg.workers), &pooled);
    println!(
        "speedup: {:.2}x ({:.1} -> {:.1} req/s)",
        pooled.throughput_rps / single.throughput_rps.max(1e-9),
        single.throughput_rps,
        pooled.throughput_rps
    );
    println!("{}", pooled.metrics.to_json());
}
