//! Overload-survival harness for the `antidote-serve` engine (ISSUE 6
//! acceptance bar).
//!
//! Replays seeded **open-loop** arrival traces — requests land on
//! schedule whether or not the engine keeps up — through five load
//! shapes (steady, ramp-through-saturation, square-wave bursts, diurnal
//! swing, heavy-tailed gaps) on one engine, then a chaos phase on a
//! fresh engine with replicas killed mid-burst. Rates are expressed as
//! multiples of the engine's *measured* capacity, so the same phases
//! overload any host identically.
//!
//! Gates (exit non-zero on violation):
//!
//! 1. **Typed everywhere**: every submitted request reaches a typed
//!    terminal state; `Disconnected` (the only untyped failure) never
//!    occurs, even with replicas dying mid-batch.
//! 2. **Degrade before shed**: in the ramp phase the first degraded
//!    completion precedes the first `Overloaded` rejection — pressure
//!    responses escalate in the documented order.
//! 3. **Chaos survival**: at least one replica kill fires, every kill
//!    is accounted (`chaos_kills == worker_panics`), the engine keeps
//!    completing work, and the completed-request p99 stays within the
//!    deadline-derived bound.
//!
//! Results go to `results/overload.json` + `results/overload.txt`
//! (atomic tmp-sibling + rename). `--smoke` shrinks every phase for CI.
//!
//! Knobs: `ANTIDOTE_OVERLOAD_SEED` (trace + chaos seed) plus the
//! standard `ANTIDOTE_SERVE_*` engine overrides. Setting the
//! `ANTIDOTE_CHAOS_*` knobs replaces the chaos phase's built-in kill
//! schedule; the main phases always run kill-free.

use antidote_bench::trace::{
    generate, mean_service_ms, replay, ArrivalProcess, ClassMix, PhaseSpec, ReplayOutcome,
    RequestClass,
};
use antidote_core::PruneSchedule;
use antidote_models::{Vgg, VggConfig};
use antidote_serve::{
    percentile, ChaosConfig, ModelFactory, Priority, ServeConfig, ServeEngine, ServeError,
    ServeMetrics,
};
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const IMAGE_SIZE: usize = 64;
const CLASSES: usize = 4;

/// Calibration sample size (sequential dense requests).
const CALIB_REQUESTS: usize = 6;

fn factory(seed: u64) -> ModelFactory {
    Arc::new(move |_worker| {
        let mut rng = SmallRng::seed_from_u64(seed);
        Box::new(Vgg::new(&mut rng, VggConfig::vgg_tiny(IMAGE_SIZE, CLASSES)))
    })
}

fn input(i: usize) -> Tensor {
    Tensor::from_fn([3, IMAGE_SIZE, IMAGE_SIZE], move |j| {
        ((i * 131 + j) % 17) as f32 * 0.05 - 0.4
    })
}

fn engine_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        queue_capacity: 48,
        base_schedule: PruneSchedule::channel_only(vec![0.5, 0.5]),
        ..ServeConfig::default()
    }
    .with_env_overrides()
}

/// The mixed SLO population every phase draws from: latency-sensitive
/// dense traffic, budgeted standard traffic, and cheap batch work with
/// a loose deadline (the first to be displaced or shed).
fn mix(deadline_ms: u64) -> ClassMix {
    ClassMix::new(vec![
        (
            RequestClass {
                name: "interactive",
                priority: Priority::Interactive,
                budget_frac: None,
                deadline_ms,
            },
            2.0,
        ),
        (
            RequestClass {
                name: "standard",
                priority: Priority::Standard,
                budget_frac: Some(0.5),
                deadline_ms: deadline_ms * 2,
            },
            5.0,
        ),
        (
            RequestClass {
                name: "batch",
                priority: Priority::Batch,
                budget_frac: Some(0.1),
                deadline_ms: deadline_ms * 4,
            },
            3.0,
        ),
    ])
}

/// Installs a process-wide panic hook that swallows only the expected
/// chaos-kill panics so the chaos phase does not spray backtraces.
fn silence_chaos_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if !msg.contains("chaos-induced") {
            prev(info);
        }
    }));
}

#[derive(Serialize)]
struct Calibration {
    service_ms: f64,
    capacity_rps: f64,
    workers: usize,
}

/// Per-phase outcome tallies from the replayed trace. `overloaded`
/// covers both shed-at-admission and displaced-from-queue outcomes
/// (the engine-level split lives in the embedded `ServeMetrics`).
#[derive(Serialize, Default)]
struct PhaseStats {
    name: String,
    duration_s: f64,
    offered: u64,
    completed: u64,
    goodput_rps: f64,
    degraded: u64,
    degrade_rate: f64,
    overloaded: u64,
    shed_rate: f64,
    deadline_exceeded: u64,
    rejected_full: u64,
    panicked: u64,
    untyped: u64,
    p50_ms: f64,
    p99_ms: f64,
}

fn phase_stats(name: &str, duration: Duration, outcomes: &[&ReplayOutcome]) -> PhaseStats {
    let mut s = PhaseStats {
        name: name.to_string(),
        duration_s: duration.as_secs_f64(),
        offered: outcomes.len() as u64,
        ..PhaseStats::default()
    };
    let mut latencies = Vec::new();
    for o in outcomes {
        match &o.result {
            Ok(resp) => {
                s.completed += 1;
                if resp.degraded {
                    s.degraded += 1;
                }
                latencies.push(resp.latency.as_secs_f64() * 1e3);
            }
            Err(ServeError::Overloaded { .. }) => s.overloaded += 1,
            Err(ServeError::DeadlineExceeded { .. }) => s.deadline_exceeded += 1,
            Err(ServeError::QueueFull { .. }) => s.rejected_full += 1,
            Err(ServeError::WorkerPanicked { .. }) => s.panicked += 1,
            Err(_) => s.untyped += 1,
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    s.goodput_rps = s.completed as f64 / s.duration_s.max(1e-9);
    s.degrade_rate = s.degraded as f64 / (s.offered as f64).max(1.0);
    s.shed_rate = s.overloaded as f64 / (s.offered as f64).max(1.0);
    s.p50_ms = percentile(&latencies, 50.0);
    s.p99_ms = percentile(&latencies, 99.0);
    s
}

#[derive(Serialize)]
struct GateResult {
    name: String,
    passed: bool,
    detail: String,
}

fn gate(gates: &mut Vec<GateResult>, name: &str, passed: bool, detail: String) {
    if !passed {
        eprintln!("GATE FAIL [{name}]: {detail}");
    }
    gates.push(GateResult {
        name: name.to_string(),
        passed,
        detail,
    });
}

#[derive(Serialize)]
struct ChaosStats {
    kills: u64,
    worker_panics: u64,
    offered: u64,
    completed: u64,
    panicked: u64,
    untyped: u64,
    p99_ms: f64,
    p99_bound_ms: f64,
}

#[derive(Serialize)]
struct OverloadReport {
    smoke: bool,
    seed: u64,
    calibration: Calibration,
    phases: Vec<PhaseStats>,
    chaos: ChaosStats,
    gates: Vec<GateResult>,
    main_metrics: ServeMetrics,
    chaos_metrics: ServeMetrics,
}

fn write_results(report: &OverloadReport) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(report).expect("report serialization cannot fail");
    antidote_bench::atomic_write(&dir, "overload.json", &json);

    let mut txt = String::new();
    txt.push_str(&format!(
        "overload_bench (smoke={}, seed={})\ncalibration: service {:.2}ms, capacity {:.1} req/s on {} workers\n\n",
        report.smoke,
        report.seed,
        report.calibration.service_ms,
        report.calibration.capacity_rps,
        report.calibration.workers,
    ));
    txt.push_str(
        "phase        offered complete goodput  degr%  shed%  expired  full  panic  p50ms  p99ms\n",
    );
    for p in &report.phases {
        txt.push_str(&format!(
            "{:<12} {:>7} {:>8} {:>7.1} {:>6.1} {:>6.1} {:>8} {:>5} {:>6} {:>6.1} {:>6.1}\n",
            p.name,
            p.offered,
            p.completed,
            p.goodput_rps,
            p.degrade_rate * 100.0,
            p.shed_rate * 100.0,
            p.deadline_exceeded,
            p.rejected_full,
            p.panicked,
            p.p50_ms,
            p.p99_ms,
        ));
    }
    txt.push_str(&format!(
        "\nchaos: {} kills, {} worker panics, {}/{} completed, p99 {:.1}ms (bound {:.1}ms)\n",
        report.chaos.kills,
        report.chaos.worker_panics,
        report.chaos.completed,
        report.chaos.offered,
        report.chaos.p99_ms,
        report.chaos.p99_bound_ms,
    ));
    for g in &report.gates {
        txt.push_str(&format!(
            "gate {:<24} {}  ({})\n",
            g.name,
            if g.passed { "PASS" } else { "FAIL" },
            g.detail
        ));
    }
    antidote_bench::atomic_write(&dir, "overload.txt", &txt);
    println!("\n{txt}");
}

fn main() -> ExitCode {
    antidote_obs::init_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = antidote_obs::env::parse_or("ANTIDOTE_OVERLOAD_SEED", 0x00DD_10AD);
    // Phase lengths: seconds in full mode, sub-second in smoke.
    let secs = |full: f64| Duration::from_secs_f64(if smoke { full * 0.3 } else { full });

    // --- calibration -----------------------------------------------------
    let mut cfg = engine_config();
    // Env-armed chaos (ANTIDOTE_CHAOS_*) parameterizes the dedicated
    // chaos phase below; the main phases run kill-free (their gates
    // assume pressure, not panics, drives the failure modes).
    let env_chaos = cfg.chaos.take();
    let engine = ServeEngine::start(cfg.clone(), factory(seed)).expect("engine start");
    let handle = engine.handle();
    let service_ms = mean_service_ms(&handle, &input(0), CALIB_REQUESTS);
    let cap = cfg.workers as f64 * 1e3 / service_ms.max(1e-3);
    println!("calibrated: service {service_ms:.2}ms -> capacity {cap:.1} req/s");

    // Deadlines scale with measured service time so the SLO pressure is
    // comparable across hosts: interactive gets ~12 service times.
    let deadline_ms = ((service_ms * 12.0) as u64).max(40);
    let mix = mix(deadline_ms);

    // --- main phases (one engine, replayed back-to-back) -----------------
    let phases = vec![
        PhaseSpec {
            name: "steady",
            process: ArrivalProcess::Steady { rps: 0.5 * cap },
            duration: secs(2.5),
            mix: mix.clone(),
        },
        PhaseSpec {
            name: "ramp",
            process: ArrivalProcess::Ramp {
                start_rps: 0.2 * cap,
                end_rps: 3.0 * cap,
            },
            duration: secs(4.0),
            mix: mix.clone(),
        },
        PhaseSpec {
            name: "burst",
            process: ArrivalProcess::Burst {
                base_rps: 0.4 * cap,
                burst_rps: 2.5 * cap,
                period: Duration::from_millis(600),
                duty: 0.3,
            },
            duration: secs(3.0),
            mix: mix.clone(),
        },
        PhaseSpec {
            name: "diurnal",
            process: ArrivalProcess::Diurnal {
                low_rps: 0.3 * cap,
                high_rps: 1.8 * cap,
                period: Duration::from_secs(2),
            },
            duration: secs(4.0),
            mix: mix.clone(),
        },
        PhaseSpec {
            name: "heavy_tail",
            process: ArrivalProcess::HeavyTail {
                rps: 1.2 * cap,
                alpha: 1.3,
            },
            duration: secs(3.0),
            mix: mix.clone(),
        },
    ];
    let events = generate(&phases, seed);
    println!(
        "replaying {} arrivals across {} phases...",
        events.len(),
        phases.len()
    );
    let outcomes = replay(&handle, &events, input);
    let main_metrics = engine.shutdown();

    let mut stats = Vec::new();
    for (idx, spec) in phases.iter().enumerate() {
        let of_phase: Vec<&ReplayOutcome> =
            outcomes.iter().filter(|o| o.phase == idx).collect();
        stats.push(phase_stats(spec.name, spec.duration, &of_phase));
    }

    let mut gates = Vec::new();

    // Gate 1: typed terminal states everywhere in the main phases.
    let untyped: u64 = stats.iter().map(|p| p.untyped).sum();
    gate(
        &mut gates,
        "typed-everywhere",
        untyped == 0,
        format!("{untyped} untyped failures across {} arrivals", outcomes.len()),
    );

    // Gate 2: degrade-before-shed ordering on the ramp phase.
    let ramp: Vec<&ReplayOutcome> = outcomes.iter().filter(|o| o.phase == 1).collect();
    let first_degraded = ramp
        .iter()
        .position(|o| matches!(&o.result, Ok(r) if r.degraded));
    let first_overloaded = ramp
        .iter()
        .position(|o| matches!(&o.result, Err(ServeError::Overloaded { .. })));
    let ordered = match (first_degraded, first_overloaded) {
        (Some(d), Some(s)) => d < s,
        (Some(_), None) => true,
        (None, _) => false,
    };
    gate(
        &mut gates,
        "degrade-before-shed",
        ordered,
        format!(
            "ramp first degraded at index {first_degraded:?}, first overloaded at {first_overloaded:?}"
        ),
    );

    // --- chaos phase (fresh engine, replicas killed mid-burst) -----------
    silence_chaos_panics();
    let chaos_cfg = ServeConfig {
        chaos: Some(env_chaos.unwrap_or(ChaosConfig {
            kill_every: Duration::from_millis(if smoke { 25 } else { 60 }),
            max_kills: if smoke { 2 } else { 5 },
            seed,
        })),
        ..cfg.clone()
    };
    let chaos_engine = ServeEngine::start(chaos_cfg, factory(seed)).expect("chaos engine start");
    let chaos_handle = chaos_engine.handle();
    let chaos_phase = vec![PhaseSpec {
        name: "chaos",
        process: ArrivalProcess::Steady { rps: 0.8 * cap },
        duration: secs(2.5),
        mix: mix.clone(),
    }];
    let chaos_events = generate(&chaos_phase, seed.wrapping_add(1));
    println!("chaos phase: replaying {} arrivals with replica kills...", chaos_events.len());
    let chaos_outcomes = replay(&chaos_handle, &chaos_events, input);
    let chaos_metrics = chaos_engine.shutdown();

    let chaos_refs: Vec<&ReplayOutcome> = chaos_outcomes.iter().collect();
    let cstats = phase_stats("chaos", chaos_phase[0].duration, &chaos_refs);
    // Completed requests are bounded by the loosest class deadline plus
    // queue-drain slack; anything beyond that means expiry-at-dequeue or
    // the shed policy failed to protect latency.
    let p99_bound_ms = (deadline_ms * 4) as f64 + 12.0 * service_ms + 100.0;
    let chaos_stats = ChaosStats {
        kills: chaos_metrics.chaos_kills,
        worker_panics: chaos_metrics.worker_panics,
        offered: cstats.offered,
        completed: cstats.completed,
        panicked: cstats.panicked,
        untyped: cstats.untyped,
        p99_ms: cstats.p99_ms,
        p99_bound_ms,
    };

    gate(
        &mut gates,
        "chaos-typed-everywhere",
        cstats.untyped == 0,
        format!("{} untyped failures under chaos", cstats.untyped),
    );
    gate(
        &mut gates,
        "chaos-kills-fire",
        chaos_metrics.chaos_kills >= 1,
        format!("{} replica kills", chaos_metrics.chaos_kills),
    );
    gate(
        &mut gates,
        "chaos-kills-accounted",
        chaos_metrics.chaos_kills == chaos_metrics.worker_panics,
        format!(
            "{} kills vs {} worker panics",
            chaos_metrics.chaos_kills, chaos_metrics.worker_panics
        ),
    );
    gate(
        &mut gates,
        "chaos-keeps-completing",
        cstats.completed > 0,
        format!("{} completions between kills", cstats.completed),
    );
    gate(
        &mut gates,
        "chaos-p99-bounded",
        cstats.p99_ms <= p99_bound_ms,
        format!("p99 {:.1}ms vs bound {p99_bound_ms:.1}ms", cstats.p99_ms),
    );

    let failed = gates.iter().any(|g| !g.passed);
    let report = OverloadReport {
        smoke,
        seed,
        calibration: Calibration {
            service_ms,
            capacity_rps: cap,
            workers: cfg.workers,
        },
        phases: stats,
        chaos: chaos_stats,
        gates,
        main_metrics,
        chaos_metrics,
    };
    write_results(&report);
    if failed {
        eprintln!("overload_bench: gate failures (see above)");
        return ExitCode::FAILURE;
    }
    println!("overload_bench ok: all gates passed");
    ExitCode::SUCCESS
}
