//! Reproduction-scale workload definitions for the four Table I
//! sections.
//!
//! Every workload pairs a synthetic dataset (the documented CIFAR /
//! ImageNet substitution) with a width-reduced model whose *topology*
//! matches the paper's (5-block VGG, 3-group ResNet), so block-indexed
//! pruning schedules transfer unchanged. Paper-scale FLOPs are always
//! computed on the *full-size* configs; the scaled models provide the
//! accuracy measurements.

use antidote_core::settings::Workload;
use antidote_data::SynthConfig;
use antidote_models::{Network, ResNet, ResNetConfig, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How much compute to spend (selected via the `ANTIDOTE_SCALE` env var:
/// `quick` (default) or `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-level runs; what CI and `cargo run --release` use.
    Quick,
    /// Larger datasets and more epochs for tighter accuracy estimates.
    Full,
}

impl Scale {
    /// Reads the scale from the `ANTIDOTE_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("ANTIDOTE_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// Which scaled model architecture a workload trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// 5-block VGG at reduced width.
    VggSmall {
        /// Block-1 filter count.
        width: usize,
    },
    /// 3-group ResNet at reduced width/depth.
    ResNetSmall {
        /// Group-1 filter count.
        width: usize,
    },
}

/// A fully specified reproduction workload.
#[derive(Debug, Clone)]
pub struct ReproWorkload {
    /// The Table I section this stands in for.
    pub workload: Workload,
    /// Synthetic dataset configuration.
    pub data: SynthConfig,
    /// Scaled model.
    pub model: ModelKind,
    /// Baseline / TTD training epochs.
    pub epochs: usize,
    /// Static-baseline fine-tuning epochs.
    pub finetune_epochs: usize,
    /// Evaluation batch size.
    pub batch_size: usize,
}

impl ReproWorkload {
    /// The reproduction-scale stand-in for a Table I workload.
    pub fn for_workload(workload: Workload, scale: Scale) -> Self {
        let (train_pc, epochs) = match scale {
            Scale::Quick => (24, 12),
            Scale::Full => (64, 24),
        };
        match workload {
            Workload::Vgg16Cifar10 => Self {
                workload,
                data: SynthConfig::synth_cifar10().with_samples(train_pc, 8),
                model: ModelKind::VggSmall { width: 16 },
                epochs,
                finetune_epochs: epochs / 2,
                batch_size: 32,
            },
            Workload::ResNet56Cifar10 => Self {
                workload,
                data: SynthConfig::synth_cifar10().with_samples(train_pc, 8),
                model: ModelKind::ResNetSmall { width: 8 },
                epochs,
                finetune_epochs: epochs / 2,
                batch_size: 32,
            },
            Workload::Vgg16Cifar100 => Self {
                workload,
                data: SynthConfig {
                    classes: match scale {
                        Scale::Quick => 20,
                        Scale::Full => 100,
                    },
                    ..SynthConfig::synth_cifar100()
                }
                .with_samples(train_pc / 2, 4),
                model: ModelKind::VggSmall { width: 16 },
                epochs,
                finetune_epochs: epochs / 2,
                batch_size: 32,
            },
            Workload::Vgg16ImageNet100 => Self {
                workload,
                data: SynthConfig {
                    classes: match scale {
                        Scale::Quick => 10,
                        Scale::Full => 40,
                    },
                    ..SynthConfig::synth_imagenet100()
                }
                .with_samples(train_pc / 2, 4),
                model: ModelKind::VggSmall { width: 16 },
                epochs,
                finetune_epochs: epochs / 2,
                batch_size: 16,
            },
        }
    }

    /// Number of pruning blocks (VGG: 5 blocks, ResNet: 3 groups).
    pub fn block_count(&self) -> usize {
        match self.model {
            ModelKind::VggSmall { .. } => 5,
            ModelKind::ResNetSmall { .. } => 3,
        }
    }

    /// Instantiates the scaled network with a fresh seed.
    pub fn build_network(&self, seed: u64) -> Box<dyn Network> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = self.data.image_size;
        let classes = self.data.classes;
        match self.model {
            ModelKind::VggSmall { width } => {
                // Batch norm is enabled at repro scale: the paper's VGG16
                // trains without it at width 512, but width-8 models on a
                // single CPU need it to converge (noted in EXPERIMENTS.md).
                Box::new(Vgg::new(
                    &mut rng,
                    VggConfig::vgg_small(size, classes, width).with_batchnorm(),
                ))
            }
            ModelKind::ResNetSmall { width } => Box::new(ResNet::new(
                &mut rng,
                ResNetConfig::resnet_small(size, classes, width),
            )),
        }
    }

    /// Paper-scale conv shapes (for the analytic FLOPs columns).
    pub fn paper_shapes(&self) -> Vec<antidote_models::ConvShape> {
        match self.workload {
            Workload::Vgg16Cifar10 => VggConfig::vgg16(32, 10).conv_shapes(),
            Workload::ResNet56Cifar10 => ResNetConfig::resnet56(32, 10).conv_shapes(),
            Workload::Vgg16Cifar100 => VggConfig::vgg16(32, 100).conv_shapes(),
            Workload::Vgg16ImageNet100 => VggConfig::vgg16(224, 100).conv_shapes(),
        }
    }

    /// The paper's baseline accuracy for this workload (Table I).
    pub fn paper_baseline_acc(&self) -> f64 {
        match self.workload {
            Workload::Vgg16Cifar10 => 93.3,
            Workload::ResNet56Cifar10 => 93.0,
            Workload::Vgg16Cifar100 => 73.1,
            Workload::Vgg16ImageNet100 => 78.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build() {
        for w in Workload::all() {
            let rw = ReproWorkload::for_workload(w, Scale::Quick);
            let mut net = rw.build_network(1);
            assert!(net.param_count() > 0);
            assert!(!rw.paper_shapes().is_empty());
            assert!(rw.block_count() >= 3);
        }
    }

    #[test]
    fn vgg_workloads_have_five_blocks() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        assert_eq!(rw.block_count(), 5);
        let taps = rw.build_network(1).taps();
        assert_eq!(taps.iter().map(|t| t.block).max(), Some(4));
    }

    #[test]
    fn resnet_workload_has_three_groups() {
        let rw = ReproWorkload::for_workload(Workload::ResNet56Cifar10, Scale::Quick);
        assert_eq!(rw.block_count(), 3);
    }

    #[test]
    fn full_scale_is_bigger() {
        let q = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let f = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Full);
        assert!(f.data.train_per_class > q.data.train_per_class);
        assert!(f.epochs > q.epochs);
    }
}
