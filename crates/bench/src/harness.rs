//! Shared experiment plumbing: parameter snapshots, static-baseline
//! schedules, and the Table I row runner.

use crate::workloads::ReproWorkload;
use antidote_baselines::{prune_statically, StaticMethod, StaticPruneConfig};
use antidote_core::flops::analytic_flops;
use antidote_core::report::ExperimentRow;
use antidote_core::settings::{baseline_rows, PaperSetting, Workload};
use antidote_core::trainer::{
    evaluate, evaluate_measured, evaluate_plain, train, TrainConfig,
};
use antidote_core::{train_ttd, PruneSchedule, TtdConfig};
use antidote_models::{Network, NoopHook};
use antidote_tensor::Tensor;

/// Copies every trainable parameter of `net` (used to reset a trained
/// network between static-baseline runs so all methods start from the
/// same weights).
pub fn snapshot_params(net: &mut dyn Network) -> Vec<Tensor> {
    let mut snap = Vec::new();
    net.visit_params_mut(&mut |p| snap.push(p.value.clone()));
    snap
}

/// Restores a parameter snapshot taken with [`snapshot_params`].
///
/// # Panics
///
/// Panics if the snapshot does not match the network's parameter list.
pub fn restore_params(net: &mut dyn Network, snapshot: &[Tensor]) {
    let mut i = 0;
    net.visit_params_mut(&mut |p| {
        assert!(i < snapshot.len(), "snapshot/parameter count mismatch");
        p.value = snapshot[i].clone();
        p.zero_grad();
        i += 1;
    });
    assert_eq!(i, snapshot.len(), "snapshot/parameter count mismatch");
}

/// The per-block channel schedule given to every static baseline — the
/// strongest static schedule Table I quotes (FO pruning's
/// `[0.17, 0.1, 0.1, 0.45, 0.65]` for VGG), so the static methods are
/// compared at their best published operating point.
pub fn static_schedule_for(workload: Workload) -> PruneSchedule {
    match workload {
        Workload::Vgg16Cifar10 | Workload::Vgg16Cifar100 => {
            PruneSchedule::channel_only(vec![0.17, 0.1, 0.1, 0.45, 0.65])
        }
        Workload::ResNet56Cifar10 => PruneSchedule::channel_only(vec![0.2, 0.2, 0.4]),
        Workload::Vgg16ImageNet100 => {
            PruneSchedule::channel_only(vec![0.2, 0.2, 0.3, 0.5, 0.6])
        }
    }
}

/// Everything measured for one Table I section.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Result rows (baselines + proposed settings).
    pub rows: Vec<ExperimentRow>,
    /// Free-form notes (measured-MAC cross-checks etc.).
    pub notes: Vec<String>,
}

/// Runs one full Table I section at reproduction scale: plain baseline
/// training, the four static baselines (rank → mask → finetune from the
/// same trained weights), and TTD + dynamic pruning for each "Proposed"
/// setting.
pub fn run_table1_workload(
    rw: &ReproWorkload,
    settings: &[PaperSetting],
    seed: u64,
) -> WorkloadResult {
    let data = rw.data.generate();
    let paper_shapes = rw.paper_shapes();
    let paper_baseline_macs: u64 = paper_shapes.iter().map(|s| s.macs()).sum();
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    // --- plain baseline ----------------------------------------------
    let train_cfg = TrainConfig {
        epochs: rw.epochs,
        batch_size: rw.batch_size,
        ..TrainConfig::default()
    };
    let mut baseline_net = rw.build_network(seed);
    train(baseline_net.as_mut(), &data, &mut NoopHook, &train_cfg);
    let baseline_acc = evaluate_plain(baseline_net.as_mut(), &data.test, rw.batch_size) * 100.0;
    let (_, dense_macs_per_img) =
        evaluate_measured(baseline_net.as_mut(), &data.test, &mut NoopHook, rw.batch_size);
    notes.push(format!(
        "{}: repro baseline acc {:.2}% (paper {:.1}%); dense measured MACs/img {:.3e} at repro scale, paper-scale baseline {:.3e}",
        rw.workload.name(),
        baseline_acc,
        rw.paper_baseline_acc(),
        dense_macs_per_img,
        paper_baseline_macs as f64,
    ));
    let trained_snapshot = snapshot_params(baseline_net.as_mut());

    // --- static baselines ---------------------------------------------
    let static_schedule = static_schedule_for(rw.workload);
    let paper_rows = baseline_rows();
    for method in StaticMethod::all() {
        // Skip method/workload pairs absent from Table I (GM is only
        // reported for VGG16/CIFAR10).
        let paper_row = paper_rows
            .iter()
            .find(|r| r.workload == rw.workload && r.method == method.name());
        let Some(paper_row) = paper_row else {
            continue;
        };
        restore_params(baseline_net.as_mut(), &trained_snapshot);
        let cfg = StaticPruneConfig {
            method,
            schedule: static_schedule.clone(),
            finetune: TrainConfig {
                epochs: rw.finetune_epochs,
                lr_max: 0.01,
                batch_size: rw.batch_size,
                ..TrainConfig::default()
            },
            ranking_batches: 4,
        };
        let outcome = prune_statically(baseline_net.as_mut(), &data, &cfg);
        let static_flops = analytic_flops(&paper_shapes, &static_schedule);
        rows.push(ExperimentRow {
            experiment: "table1".into(),
            workload: rw.workload.name().into(),
            method: method.name().into(),
            baseline_acc_pct: baseline_acc as f64,
            final_acc_pct: outcome.post_finetune_acc as f64 * 100.0,
            baseline_flops: paper_baseline_macs as f64,
            final_flops: static_flops.pruned_macs,
            flops_reduction_pct: static_flops.reduction_pct(),
            paper_reduction_pct: paper_row.reduction_pct,
            paper_accuracy_drop_pct: paper_row.accuracy_drop_pct,
        });
    }

    // --- proposed: TTD + dynamic pruning --------------------------------
    for setting in settings {
        let mut net = rw.build_network(seed);
        // TTD trains longer than the plain baseline: the paper keeps
        // training through the ratio ascent "until the target pruning
        // ratio and a satisfying accuracy is achieved" (Sec. IV-B).
        let ttd_epochs = rw.epochs * 2;
        let mut cfg = TtdConfig::new(setting.schedule.clone(), ttd_epochs);
        cfg.train = TrainConfig {
            epochs: ttd_epochs,
            ..train_cfg
        };
        let outcome = train_ttd(net.as_mut(), &data, &cfg);
        let mut pruner = outcome.pruner;
        let acc = evaluate(net.as_mut(), &data.test, &mut pruner, rw.batch_size) * 100.0;
        let (acc_measured, pruned_macs_per_img) =
            evaluate_measured(net.as_mut(), &data.test, &mut pruner, rw.batch_size);
        let breakdown = analytic_flops(&paper_shapes, &setting.schedule);
        let measured_reduction =
            100.0 * (1.0 - pruned_macs_per_img / dense_macs_per_img);
        notes.push(format!(
            "{} / {}: measured MACs/img {:.3e} -> {:.3e} ({:.1}% reduction at repro scale; analytic paper-scale {:.1}%); mask-path acc {:.2}% vs masked-executor acc {:.2}%",
            rw.workload.name(),
            setting.name,
            dense_macs_per_img,
            pruned_macs_per_img,
            measured_reduction,
            breakdown.reduction_pct(),
            acc,
            acc_measured * 100.0,
        ));
        rows.push(ExperimentRow {
            experiment: "table1".into(),
            workload: rw.workload.name().into(),
            method: setting.name.clone(),
            baseline_acc_pct: baseline_acc as f64,
            final_acc_pct: acc as f64,
            baseline_flops: paper_baseline_macs as f64,
            final_flops: breakdown.pruned_macs,
            flops_reduction_pct: breakdown.reduction_pct(),
            paper_reduction_pct: setting.paper_reduction_pct,
            paper_accuracy_drop_pct: setting.paper_accuracy_drop_pct,
        });
    }
    WorkloadResult { rows, notes }
}

/// Writes an experiment report to `results/<name>.json` under the
/// workspace root (best effort — printing is the primary output).
pub fn write_report(report: &antidote_core::report::ExperimentReport, name: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.json")), report.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_round_trip() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let mut net = rw.build_network(5);
        let snap = snapshot_params(net.as_mut());
        // Perturb, then restore.
        net.visit_params_mut(&mut |p| {
            for v in p.value.data_mut() {
                *v += 1.0;
            }
        });
        restore_params(net.as_mut(), &snap);
        let mut i = 0;
        net.visit_params_mut(&mut |p| {
            assert_eq!(p.value.data(), snap[i].data());
            i += 1;
        });
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn restore_validates_length() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let mut net = rw.build_network(5);
        let mut snap = snapshot_params(net.as_mut());
        snap.pop();
        restore_params(net.as_mut(), &snap);
    }

    #[test]
    fn static_schedules_exist_for_all_workloads() {
        for w in Workload::all() {
            assert!(!static_schedule_for(w).is_noop());
        }
    }

    #[test]
    fn resnet_static_schedule_has_three_blocks() {
        assert_eq!(
            static_schedule_for(Workload::ResNet56Cifar10)
                .channel_prune()
                .len(),
            3
        );
        let _ = SmallRng::seed_from_u64(0); // keep rand linked in tests
    }
}
