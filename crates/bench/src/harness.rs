//! Shared experiment plumbing: parameter snapshots, static-baseline
//! schedules, and the Table I row runner.

use crate::workloads::ReproWorkload;
use antidote_baselines::{prune_statically, StaticMethod, StaticPruneConfig};
use antidote_core::checkpoint::{restore_tensors, LoadCheckpointError};
use antidote_core::flops::analytic_flops;
use antidote_core::report::ExperimentRow;
use antidote_core::settings::{baseline_rows, PaperSetting, Workload};
use antidote_core::trainer::{evaluate, evaluate_plain, train_with_options, TrainConfig};
use antidote_core::{
    train_ttd_with_options, PruneSchedule, RecoverySettings, RunOptions, TrainError, TtdConfig,
};
use antidote_data::{BatchIter, Split};
use antidote_models::{FeatureHook, Network, NoopHook};
use antidote_nn::loss::accuracy;
use antidote_nn::masked::MacCounter;
use antidote_serve::LatencySummary;
use antidote_tensor::Tensor;
use std::fmt;
use std::time::Instant;

/// Copies every trainable parameter of `net` (used to reset a trained
/// network between static-baseline runs so all methods start from the
/// same weights).
pub fn snapshot_params(net: &mut dyn Network) -> Vec<Tensor> {
    let mut snap = Vec::new();
    net.visit_params_mut(&mut |p| snap.push(p.value.clone()));
    snap
}

/// Restores a parameter snapshot taken with [`snapshot_params`].
///
/// Shares the validate-first restore path with
/// [`antidote_core::checkpoint::Checkpoint::restore`]: on any mismatch a
/// typed error is returned and the network is left untouched.
///
/// # Errors
///
/// [`LoadCheckpointError::ParamCountMismatch`] or
/// [`LoadCheckpointError::ShapeMismatch`] when the snapshot does not
/// match the network's parameter list.
pub fn restore_params(
    net: &mut dyn Network,
    snapshot: &[Tensor],
) -> Result<(), LoadCheckpointError> {
    restore_tensors(net, snapshot)
}

/// Per-run knobs of the workload runner: recovery bounds, gradient
/// clipping, and fault injection for exercising the failure paths.
#[derive(Debug, Clone, Default)]
pub struct WorkloadRunOptions {
    /// Divergence-recovery bounds for the training runs.
    pub recovery: RecoverySettings,
    /// Optional global-L2 gradient clipping threshold.
    pub grad_clip: Option<f32>,
    /// Inject a NaN fault after this baseline-training epoch (testing
    /// knob; `None` disables injection).
    pub inject_fault_epoch: Option<usize>,
    /// Restrict injection to one workload, by key (`vgg16_cifar10`) or
    /// display name (`VGG16 (CIFAR10)`); `None` injects into every
    /// workload.
    pub inject_workload: Option<String>,
}

impl WorkloadRunOptions {
    /// Reads options from the environment:
    ///
    /// - `ANTIDOTE_MAX_RETRIES` — divergence rollbacks allowed per run;
    /// - `ANTIDOTE_LR_BACKOFF` — learning-rate factor per rollback;
    /// - `ANTIDOTE_GRAD_CLIP` — global-L2 gradient clipping threshold;
    /// - `ANTIDOTE_INJECT_FAULT` — epoch to inject a NaN fault after;
    /// - `ANTIDOTE_INJECT_WORKLOAD` — restrict injection to one workload.
    ///
    /// Values that fail to parse — including non-positive or non-finite
    /// `ANTIDOTE_LR_BACKOFF` / `ANTIDOTE_GRAD_CLIP` — are ignored with a
    /// warning, keeping the defaults (the shared warn-and-ignore
    /// convention of [`antidote_obs::env`]).
    pub fn from_env() -> Self {
        use antidote_obs::env::parse;
        fn positive(key: &str) -> Option<f32> {
            // `env::positive` admits +inf (it only checks `> 0`); the
            // recovery supervisor asserts finiteness, so reject it here.
            let f = antidote_obs::env::positive::<f32>(key)?;
            if f.is_finite() {
                Some(f)
            } else {
                antidote_obs::env::warn_ignored(key, &f.to_string(), "must be finite");
                None
            }
        }
        let mut opts = Self::default();
        if let Some(n) = parse::<usize>("ANTIDOTE_MAX_RETRIES") {
            opts.recovery.max_retries = n;
        }
        if let Some(f) = positive("ANTIDOTE_LR_BACKOFF") {
            opts.recovery.lr_backoff = f;
        }
        opts.grad_clip = positive("ANTIDOTE_GRAD_CLIP");
        opts.inject_fault_epoch = parse::<usize>("ANTIDOTE_INJECT_FAULT");
        opts.inject_workload = std::env::var("ANTIDOTE_INJECT_WORKLOAD").ok();
        opts
    }
}

/// Accuracy, measured cost, and per-batch latency distribution of one
/// masked-executor evaluation pass.
#[derive(Debug, Clone)]
pub struct MeasuredEval {
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Measured MACs per image.
    pub macs_per_image: f64,
    /// Per-batch forward latency distribution (p50/p95/p99 via the
    /// [`antidote_serve::percentile`] helper the serving metrics use).
    pub latency: LatencySummary,
}

/// [`antidote_core::trainer::evaluate_measured`]-equivalent that also times every batch's
/// masked forward pass, summarizing the distribution as percentiles
/// instead of a bare mean — a mean hides the tail that serving SLOs
/// care about.
pub fn evaluate_measured_timed(
    net: &mut dyn Network,
    split: &Split,
    hook: &mut dyn FeatureHook,
    batch_size: usize,
) -> MeasuredEval {
    let mut counter = MacCounter::new();
    let mut correct = 0.0f64;
    let mut total = 0usize;
    let mut batch_times = Vec::new();
    for (images, labels) in BatchIter::new(split, batch_size, None) {
        let start = Instant::now();
        let logits = net.forward_measured(&images, hook, &mut counter);
        batch_times.push(start.elapsed());
        correct += (accuracy(&logits, &labels) * labels.len() as f32) as f64;
        total += labels.len();
    }
    let latency = LatencySummary::from_durations(&batch_times);
    if total == 0 {
        return MeasuredEval {
            accuracy: 0.0,
            macs_per_image: 0.0,
            latency,
        };
    }
    MeasuredEval {
        accuracy: (correct / total as f64) as f32,
        macs_per_image: counter.total() as f64 / total as f64,
        latency,
    }
}

/// Typed failure of one Table I workload: which stage failed and why.
/// The experiment binaries turn these into
/// [`antidote_core::report::FailureRecord`] rows instead of aborting.
#[derive(Debug)]
pub enum WorkloadError {
    /// The plain baseline training run failed.
    Baseline(TrainError),
    /// A TTD run for one "Proposed" setting failed.
    Ttd {
        /// Name of the setting whose run failed.
        setting: String,
        /// The underlying training error.
        error: TrainError,
    },
    /// Restoring the shared trained snapshot failed.
    Restore(LoadCheckpointError),
}

impl WorkloadError {
    /// Short stage label for failure records.
    pub fn stage(&self) -> &'static str {
        match self {
            WorkloadError::Baseline(_) => "baseline-train",
            WorkloadError::Ttd { .. } => "ttd",
            WorkloadError::Restore(_) => "restore",
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Baseline(e) => write!(f, "baseline training failed: {e}"),
            WorkloadError::Ttd { setting, error } => {
                write!(f, "TTD run for '{setting}' failed: {error}")
            }
            WorkloadError::Restore(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The per-block channel schedule given to every static baseline — the
/// strongest static schedule Table I quotes (FO pruning's
/// `[0.17, 0.1, 0.1, 0.45, 0.65]` for VGG), so the static methods are
/// compared at their best published operating point.
pub fn static_schedule_for(workload: Workload) -> PruneSchedule {
    match workload {
        Workload::Vgg16Cifar10 | Workload::Vgg16Cifar100 => {
            PruneSchedule::channel_only(vec![0.17, 0.1, 0.1, 0.45, 0.65])
        }
        Workload::ResNet56Cifar10 => PruneSchedule::channel_only(vec![0.2, 0.2, 0.4]),
        Workload::Vgg16ImageNet100 => {
            PruneSchedule::channel_only(vec![0.2, 0.2, 0.3, 0.5, 0.6])
        }
    }
}

/// Everything measured for one Table I section.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Result rows (baselines + proposed settings).
    pub rows: Vec<ExperimentRow>,
    /// Free-form notes (measured-MAC cross-checks etc.).
    pub notes: Vec<String>,
}

/// Runs one full Table I section at reproduction scale: plain baseline
/// training, the four static baselines (rank → mask → finetune from the
/// same trained weights), and TTD + dynamic pruning for each "Proposed"
/// setting.
///
/// Training runs execute under the recovery supervisor configured in
/// `opts`; a run that diverges beyond its retry budget (or a snapshot
/// mismatch) is returned as a typed [`WorkloadError`] so callers can
/// isolate the failure instead of aborting the whole experiment.
///
/// # Errors
///
/// [`WorkloadError`] naming the failed stage.
pub fn run_table1_workload(
    rw: &ReproWorkload,
    settings: &[PaperSetting],
    seed: u64,
    opts: &WorkloadRunOptions,
) -> Result<WorkloadResult, WorkloadError> {
    let data = rw.data.generate();
    let paper_shapes = rw.paper_shapes();
    let paper_baseline_macs: u64 = paper_shapes.iter().map(|s| s.macs()).sum();
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    // --- plain baseline ----------------------------------------------
    let train_cfg = TrainConfig {
        epochs: rw.epochs,
        batch_size: rw.batch_size,
        grad_clip: opts.grad_clip,
        ..TrainConfig::default()
    };
    let inject_here = opts
        .inject_workload
        .as_deref()
        .is_none_or(|w| rw.workload.matches(w));
    let baseline_run = RunOptions {
        recovery: opts.recovery,
        inject_nan_at_epoch: opts.inject_fault_epoch.filter(|_| inject_here),
        ..RunOptions::default()
    };
    let mut baseline_net = rw.build_network(seed);
    let baseline_history = train_with_options(
        baseline_net.as_mut(),
        &data,
        &mut NoopHook,
        &train_cfg,
        &baseline_run,
    )
    .map_err(WorkloadError::Baseline)?;
    for event in &baseline_history.recoveries {
        notes.push(format!(
            "{}: recovered from {} at epoch {} (attempt {}, lr scale {:.3})",
            rw.workload.name(),
            event.kind,
            event.epoch,
            event.attempt,
            event.lr_scale,
        ));
    }
    let baseline_acc = evaluate_plain(baseline_net.as_mut(), &data.test, rw.batch_size) * 100.0;
    let dense_eval =
        evaluate_measured_timed(baseline_net.as_mut(), &data.test, &mut NoopHook, rw.batch_size);
    let dense_macs_per_img = dense_eval.macs_per_image;
    notes.push(format!(
        "{}: repro baseline acc {:.2}% (paper {:.1}%); dense measured MACs/img {:.3e} at repro scale, paper-scale baseline {:.3e}",
        rw.workload.name(),
        baseline_acc,
        rw.paper_baseline_acc(),
        dense_macs_per_img,
        paper_baseline_macs as f64,
    ));
    notes.push(format!(
        "{}: dense per-batch latency p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms ({} batches)",
        rw.workload.name(),
        dense_eval.latency.p50_ms,
        dense_eval.latency.p95_ms,
        dense_eval.latency.p99_ms,
        dense_eval.latency.count,
    ));
    let trained_snapshot = snapshot_params(baseline_net.as_mut());

    // --- static baselines ---------------------------------------------
    let static_schedule = static_schedule_for(rw.workload);
    let paper_rows = baseline_rows();
    for method in StaticMethod::all() {
        // Skip method/workload pairs absent from Table I (GM is only
        // reported for VGG16/CIFAR10).
        let paper_row = paper_rows
            .iter()
            .find(|r| r.workload == rw.workload && r.method == method.name());
        let Some(paper_row) = paper_row else {
            continue;
        };
        restore_params(baseline_net.as_mut(), &trained_snapshot).map_err(WorkloadError::Restore)?;
        let cfg = StaticPruneConfig {
            method,
            schedule: static_schedule.clone(),
            finetune: TrainConfig {
                epochs: rw.finetune_epochs,
                lr_max: 0.01,
                batch_size: rw.batch_size,
                grad_clip: opts.grad_clip,
                ..TrainConfig::default()
            },
            ranking_batches: 4,
        };
        let outcome = prune_statically(baseline_net.as_mut(), &data, &cfg);
        let static_flops = analytic_flops(&paper_shapes, &static_schedule);
        rows.push(ExperimentRow {
            experiment: "table1".into(),
            workload: rw.workload.name().into(),
            method: method.name().into(),
            baseline_acc_pct: baseline_acc as f64,
            final_acc_pct: outcome.post_finetune_acc as f64 * 100.0,
            baseline_flops: paper_baseline_macs as f64,
            final_flops: static_flops.pruned_macs,
            flops_reduction_pct: static_flops.reduction_pct(),
            paper_reduction_pct: paper_row.reduction_pct,
            paper_accuracy_drop_pct: paper_row.accuracy_drop_pct,
        });
    }

    // --- proposed: TTD + dynamic pruning --------------------------------
    for setting in settings {
        let mut net = rw.build_network(seed);
        // TTD trains longer than the plain baseline: the paper keeps
        // training through the ratio ascent "until the target pruning
        // ratio and a satisfying accuracy is achieved" (Sec. IV-B).
        let ttd_epochs = rw.epochs * 2;
        let mut cfg = TtdConfig::new(setting.schedule.clone(), ttd_epochs);
        cfg.train = TrainConfig {
            epochs: ttd_epochs,
            ..train_cfg
        };
        let ttd_run = RunOptions {
            recovery: opts.recovery,
            ..RunOptions::default()
        };
        let outcome =
            train_ttd_with_options(net.as_mut(), &data, &cfg, &ttd_run).map_err(|error| {
                WorkloadError::Ttd {
                    setting: setting.name.clone(),
                    error,
                }
            })?;
        let mut pruner = outcome.pruner;
        let acc = evaluate(net.as_mut(), &data.test, &mut pruner, rw.batch_size) * 100.0;
        let pruned_eval =
            evaluate_measured_timed(net.as_mut(), &data.test, &mut pruner, rw.batch_size);
        let pruned_macs_per_img = pruned_eval.macs_per_image;
        let breakdown = analytic_flops(&paper_shapes, &setting.schedule);
        let measured_reduction =
            100.0 * (1.0 - pruned_macs_per_img / dense_macs_per_img);
        notes.push(format!(
            "{} / {}: measured MACs/img {:.3e} -> {:.3e} ({:.1}% reduction at repro scale; analytic paper-scale {:.1}%); mask-path acc {:.2}% vs masked-executor acc {:.2}%",
            rw.workload.name(),
            setting.name,
            dense_macs_per_img,
            pruned_macs_per_img,
            measured_reduction,
            breakdown.reduction_pct(),
            acc,
            pruned_eval.accuracy * 100.0,
        ));
        notes.push(format!(
            "{} / {}: pruned per-batch latency p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms ({} batches)",
            rw.workload.name(),
            setting.name,
            pruned_eval.latency.p50_ms,
            pruned_eval.latency.p95_ms,
            pruned_eval.latency.p99_ms,
            pruned_eval.latency.count,
        ));
        rows.push(ExperimentRow {
            experiment: "table1".into(),
            workload: rw.workload.name().into(),
            method: setting.name.clone(),
            baseline_acc_pct: baseline_acc as f64,
            final_acc_pct: acc as f64,
            baseline_flops: paper_baseline_macs as f64,
            final_flops: breakdown.pruned_macs,
            flops_reduction_pct: breakdown.reduction_pct(),
            paper_reduction_pct: setting.paper_reduction_pct,
            paper_accuracy_drop_pct: setting.paper_accuracy_drop_pct,
        });
    }
    Ok(WorkloadResult { rows, notes })
}

/// Best-effort atomic file write (temporary sibling + rename), so a
/// crash mid-write never leaves a truncated artifact at `dir/name`. The
/// single implementation behind every bench binary's results writer —
/// printing remains the primary output, so failures are swallowed.
pub fn atomic_write(dir: &std::path::Path, name: &str, contents: &str) {
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, contents).is_ok() && std::fs::rename(&tmp, dir.join(name)).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Writes an experiment report to `results/<name>.json` under the
/// workspace root (best effort — printing is the primary output),
/// atomically via [`atomic_write`].
pub fn write_report(report: &antidote_core::report::ExperimentReport, name: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_ok() {
        atomic_write(&dir, &format!("{name}.json"), &report.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_round_trip() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let mut net = rw.build_network(5);
        let snap = snapshot_params(net.as_mut());
        // Perturb, then restore.
        net.visit_params_mut(&mut |p| {
            for v in p.value.data_mut() {
                *v += 1.0;
            }
        });
        restore_params(net.as_mut(), &snap).unwrap();
        let mut i = 0;
        net.visit_params_mut(&mut |p| {
            assert_eq!(p.value.data(), snap[i].data());
            i += 1;
        });
    }

    #[test]
    fn restore_validates_length() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let mut net = rw.build_network(5);
        let mut snap = snapshot_params(net.as_mut());
        snap.pop();
        let before = snapshot_params(net.as_mut());
        let err = restore_params(net.as_mut(), &snap).unwrap_err();
        assert!(matches!(
            err,
            LoadCheckpointError::ParamCountMismatch { .. }
        ));
        // The failed restore must leave the network untouched.
        let after = snapshot_params(net.as_mut());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn restore_validates_shapes() {
        let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
        let mut net = rw.build_network(5);
        let mut snap = snapshot_params(net.as_mut());
        let last = snap.len() - 1;
        snap[last] = Tensor::zeros([1, 2, 3]);
        assert!(matches!(
            restore_params(net.as_mut(), &snap).unwrap_err(),
            LoadCheckpointError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn workload_options_from_env_defaults() {
        // With none of the variables set, from_env matches Default.
        for key in [
            "ANTIDOTE_MAX_RETRIES",
            "ANTIDOTE_LR_BACKOFF",
            "ANTIDOTE_GRAD_CLIP",
            "ANTIDOTE_INJECT_FAULT",
            "ANTIDOTE_INJECT_WORKLOAD",
        ] {
            assert!(std::env::var(key).is_err(), "{key} leaked into test env");
        }
        let opts = WorkloadRunOptions::from_env();
        assert_eq!(opts.recovery, RecoverySettings::default());
        assert_eq!(opts.grad_clip, None);
        assert_eq!(opts.inject_fault_epoch, None);
        assert_eq!(opts.inject_workload, None);
    }

    #[test]
    fn timed_eval_matches_untimed_and_orders_percentiles() {
        use antidote_core::trainer::evaluate_measured;
        use antidote_data::SynthConfig;
        use antidote_models::{Vgg, VggConfig};

        // 3 classes x 4 test samples per class = 12 images.
        let data = SynthConfig::tiny(3, 8).with_samples(4, 4).generate();
        let mut net = Vgg::new(
            &mut SmallRng::seed_from_u64(9),
            VggConfig::vgg_tiny(8, 3),
        );
        let timed = evaluate_measured_timed(&mut net, &data.test, &mut NoopHook, 4);
        let (acc, macs) = evaluate_measured(&mut net, &data.test, &mut NoopHook, 4);
        assert_eq!(timed.accuracy, acc);
        assert_eq!(timed.macs_per_image, macs);
        assert_eq!(timed.latency.count, 3, "12 samples / batch 4 = 3 batches");
        assert!(timed.latency.p50_ms <= timed.latency.p95_ms);
        assert!(timed.latency.p95_ms <= timed.latency.p99_ms);
        assert!(timed.latency.p99_ms <= timed.latency.max_ms);
        assert!(timed.latency.max_ms > 0.0);
    }

    #[test]
    fn static_schedules_exist_for_all_workloads() {
        for w in Workload::all() {
            assert!(!static_schedule_for(w).is_noop());
        }
    }

    #[test]
    fn resnet_static_schedule_has_three_blocks() {
        assert_eq!(
            static_schedule_for(Workload::ResNet56Cifar10)
                .channel_prune()
                .len(),
            3
        );
        let _ = SmallRng::seed_from_u64(0); // keep rand linked in tests
    }
}
