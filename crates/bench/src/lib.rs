//! # antidote-bench
//!
//! The experiment harness of the AntiDote reproduction. Each artifact of
//! the paper's evaluation has a regenerating binary:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (all four sections) | `cargo run -p antidote-bench --bin table1 --release` |
//! | Fig. 2 (attention vs random vs inverse) | `… --bin fig2 --release` |
//! | Fig. 3 (block sensitivity) | `… --bin fig3 --release` |
//! | Fig. 4 (redundancy composition) | `… --bin fig4 --release` |
//! | Sec. IV-B ratio ascent behaviour | `… --bin ttd_ascent --release` |
//! | Serving throughput/latency under budgets | `… --bin serve_bench --release` |
//! | Overload survival (open-loop traces + chaos) | `… --bin overload_bench --release` |
//! | Per-layer time/MAC profile (obs-backed) | `… --bin profile_report --release` |
//! | Intra-op thread parity + GEMM speedup | `… --bin par_bench --release` |
//! | Int8 quantization accuracy + GEMM byte/wall gates | `… --bin quant_bench --release` |
//!
//! plus Criterion kernel benches (`cargo bench -p antidote-bench`):
//! `masked_conv`, `table1_flops`, `fig2_criteria`, `fig3_sensitivity`,
//! `fig4_decompose`, `ttd_overhead`.
//!
//! Set `ANTIDOTE_SCALE=full` for larger datasets/epochs (defaults to a
//! minutes-level `quick` scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
pub mod trace;
mod workloads;

pub use harness::{
    atomic_write, evaluate_measured_timed, restore_params, run_table1_workload, snapshot_params,
    static_schedule_for, write_report, MeasuredEval, WorkloadError, WorkloadResult,
    WorkloadRunOptions,
};
pub use workloads::{ModelKind, ReproWorkload, Scale};
