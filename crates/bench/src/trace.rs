//! Open-loop arrival traces for serving benchmarks.
//!
//! A trace is a pre-generated, seeded list of [`TraceEvent`]s — absolute
//! arrival offsets plus a [`RequestClass`] drawn from a weighted
//! [`ClassMix`]. [`replay`] submits each event at its scheduled instant
//! whether or not the engine has kept up ("open loop"), which is the
//! property that makes overload visible: a closed-loop generator slows
//! down with the server and can never push it past saturation.
//!
//! Arrival shapes ([`ArrivalProcess`]) cover the regimes an overloaded
//! server meets in practice: steady Poisson, linear ramps through
//! saturation, square-wave bursts, slow diurnal swings, and
//! heavy-tailed (Pareto) gaps whose variance defeats sizing by mean
//! rate alone.

use antidote_serve::{InferRequest, InferResponse, Priority, ServeError, ServeHandle};
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One kind of request in the mix: a priority lane, an optional compute
/// budget (as a fraction of the floor→dense MAC range, resolved against
/// the target engine at replay time), and an SLO deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// Label used in reports.
    pub name: &'static str,
    /// Priority lane for SLO scheduling and shed ordering.
    pub priority: Priority,
    /// Budget as a fraction in `[0, 1]` of `floor + f·(dense − floor)`
    /// MACs; `None` submits an unbudgeted (dense) request.
    pub budget_frac: Option<f64>,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: u64,
}

/// A weighted set of [`RequestClass`]es to draw arrivals from.
#[derive(Debug, Clone)]
pub struct ClassMix {
    classes: Vec<(RequestClass, f64)>,
    total_weight: f64,
}

impl ClassMix {
    /// Builds a mix from `(class, weight)` pairs.
    ///
    /// # Panics
    ///
    /// If the list is empty or any weight is non-positive/non-finite.
    pub fn new(classes: Vec<(RequestClass, f64)>) -> Self {
        assert!(!classes.is_empty(), "class mix must not be empty");
        let mut total_weight = 0.0;
        for (class, w) in &classes {
            assert!(
                w.is_finite() && *w > 0.0,
                "class {} has invalid weight {w}",
                class.name
            );
            total_weight += w;
        }
        Self { classes, total_weight }
    }

    /// A mix containing a single class.
    pub fn uniform(class: RequestClass) -> Self {
        Self::new(vec![(class, 1.0)])
    }

    /// Draws one class according to the weights.
    pub fn pick(&self, rng: &mut SmallRng) -> RequestClass {
        let mut roll = rng.gen::<f64>() * self.total_weight;
        for (class, w) in &self.classes {
            roll -= w;
            if roll <= 0.0 {
                return *class;
            }
        }
        // Floating-point slop on the last draw.
        self.classes[self.classes.len() - 1].0
    }
}

/// Shape of the arrival rate over one phase. All rates are requests per
/// second; the instantaneous rate is evaluated at the *fraction* of the
/// phase elapsed, so the same process stretches to any duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at a fixed rate.
    Steady {
        /// Mean arrival rate.
        rps: f64,
    },
    /// Rate climbs linearly from `start_rps` to `end_rps` — the classic
    /// drive-through-saturation sweep.
    Ramp {
        /// Rate at the start of the phase.
        start_rps: f64,
        /// Rate at the end of the phase.
        end_rps: f64,
    },
    /// Square wave: `burst_rps` for the first `duty` fraction of each
    /// `period`, `base_rps` for the rest.
    Burst {
        /// Rate between bursts.
        base_rps: f64,
        /// Rate during a burst.
        burst_rps: f64,
        /// Length of one burst cycle.
        period: Duration,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        duty: f64,
    },
    /// Sinusoidal swing between `low_rps` and `high_rps` with the given
    /// period — a compressed day/night load curve.
    Diurnal {
        /// Trough rate.
        low_rps: f64,
        /// Peak rate.
        high_rps: f64,
        /// Length of one full cycle.
        period: Duration,
    },
    /// Pareto-distributed gaps with mean `1/rps`: most gaps are short,
    /// a few are very long, so arrivals clump far harder than Poisson
    /// at the same mean rate. `alpha` must exceed 1 for the mean to
    /// exist; values near 1 are the most bursty.
    HeavyTail {
        /// Mean arrival rate.
        rps: f64,
        /// Pareto shape parameter (> 1).
        alpha: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous mean rate at `frac ∈ [0, 1]` of the phase, given
    /// the phase duration (needed by the periodic shapes).
    pub fn rate_at(&self, frac: f64, phase: Duration) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        match *self {
            ArrivalProcess::Steady { rps } | ArrivalProcess::HeavyTail { rps, .. } => rps,
            ArrivalProcess::Ramp { start_rps, end_rps } => {
                start_rps + frac * (end_rps - start_rps)
            }
            ArrivalProcess::Burst { base_rps, burst_rps, period, duty } => {
                let t = frac * phase.as_secs_f64();
                let pos = (t / period.as_secs_f64().max(1e-9)).fract();
                if pos < duty {
                    burst_rps
                } else {
                    base_rps
                }
            }
            ArrivalProcess::Diurnal { low_rps, high_rps, period } => {
                let t = frac * phase.as_secs_f64();
                let angle = t / period.as_secs_f64().max(1e-9) * std::f64::consts::TAU;
                let mid = 0.5 * (low_rps + high_rps);
                let amp = 0.5 * (high_rps - low_rps);
                // Start at the trough so short phases still show a swing.
                mid - amp * angle.cos()
            }
        }
    }

    /// Samples the gap to the next arrival at `frac` of the phase.
    /// Exponential gaps (Poisson) for every shape except `HeavyTail`,
    /// which draws Pareto gaps with the same mean, capped at 10× the
    /// mean so a single extreme draw cannot consume the whole phase.
    fn gap(&self, frac: f64, phase: Duration, rng: &mut SmallRng) -> Duration {
        match *self {
            ArrivalProcess::HeavyTail { rps, alpha } => {
                let mean = 1.0 / rps.max(1e-9);
                // Pareto(xm, α) has mean xm·α/(α−1); invert for xm.
                let xm = mean * (alpha - 1.0) / alpha;
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let gap = xm / u.powf(1.0 / alpha);
                Duration::from_secs_f64(gap.min(10.0 * mean))
            }
            _ => {
                let rate = self.rate_at(frac, phase).max(1e-9);
                let u: f64 = rng.gen::<f64>().max(1e-12);
                Duration::from_secs_f64(-u.ln() / rate)
            }
        }
    }
}

/// One phase of a trace: an arrival shape sustained for a duration,
/// drawing request classes from a mix.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Label used in reports.
    pub name: &'static str,
    /// Arrival shape for this phase.
    pub process: ArrivalProcess,
    /// How long the phase lasts.
    pub duration: Duration,
    /// Request classes to draw from.
    pub mix: ClassMix,
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Offset from the start of the trace.
    pub at: Duration,
    /// Index of the phase (into the `PhaseSpec` slice) that produced
    /// this arrival.
    pub phase: usize,
    /// The drawn request class.
    pub class: RequestClass,
}

/// Generates the full arrival trace for a sequence of phases from one
/// seed. Deterministic: the same phases and seed always produce the
/// same trace, so runs are comparable across machines and reruns.
pub fn generate(phases: &[PhaseSpec], seed: u64) -> Vec<TraceEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut phase_start = Duration::ZERO;
    for (idx, spec) in phases.iter().enumerate() {
        let mut t = Duration::ZERO;
        loop {
            let frac = t.as_secs_f64() / spec.duration.as_secs_f64().max(1e-9);
            t += spec.process.gap(frac, spec.duration, &mut rng);
            if t >= spec.duration {
                break;
            }
            events.push(TraceEvent {
                at: phase_start + t,
                phase: idx,
                class: spec.mix.pick(&mut rng),
            });
        }
        phase_start += spec.duration;
    }
    events
}

/// Terminal outcome of one replayed arrival, tagged with where in the
/// trace it came from.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Phase index of the arrival.
    pub phase: usize,
    /// The arrival's request class.
    pub class: RequestClass,
    /// The engine's typed response or failure.
    pub result: Result<InferResponse, ServeError>,
}

/// Replays a trace against a live engine, open loop: every event is
/// submitted at its scheduled offset regardless of how the engine is
/// doing, and responses are collected only after the last submission.
/// Budgets are resolved against the handle's floor/dense MAC range.
///
/// The caller supplies the input for each event (indexed by position in
/// `events`), so replays can be deterministic or varied as needed.
pub fn replay(
    handle: &ServeHandle,
    events: &[TraceEvent],
    mut input: impl FnMut(usize) -> Tensor,
) -> Vec<ReplayOutcome> {
    let floor = handle.floor_macs();
    let dense = handle.dense_macs();
    let start = Instant::now();
    let mut pending = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let due = start + ev.at;
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep(due - now);
        }
        let mut req = InferRequest::new(input(i))
            .with_priority(ev.class.priority)
            .with_deadline(Duration::from_millis(ev.class.deadline_ms));
        if let Some(f) = ev.class.budget_frac {
            req = req.with_budget(floor + f.clamp(0.0, 1.0) * (dense - floor));
        }
        // Admission errors (shed, full, infeasible) are terminal
        // outcomes too; keep them in order with the successes.
        pending.push((ev.phase, ev.class, handle.submit(req)));
    }
    pending
        .into_iter()
        .map(|(phase, class, sub)| ReplayOutcome {
            phase,
            class,
            result: sub.and_then(|p| p.wait()),
        })
        .collect()
}

/// Measures the mean single-request service latency (milliseconds) by
/// running `n` sequential dense requests — the capacity calibration
/// used to express trace rates as multiples of what the engine can
/// actually sustain.
pub fn mean_service_ms(handle: &ServeHandle, input: &Tensor, n: usize) -> f64 {
    let n = n.max(1);
    let mut total = Duration::ZERO;
    for _ in 0..n {
        let resp = handle
            .submit(InferRequest::new(input.clone()))
            .and_then(|p| p.wait())
            .expect("calibration request must succeed on an idle engine");
        total += resp.latency;
    }
    total.as_secs_f64() * 1e3 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &'static str) -> RequestClass {
        RequestClass {
            name,
            priority: Priority::Standard,
            budget_frac: None,
            deadline_ms: 1000,
        }
    }

    fn steady_phase(rps: f64, secs: u64) -> PhaseSpec {
        PhaseSpec {
            name: "steady",
            process: ArrivalProcess::Steady { rps },
            duration: Duration::from_secs(secs),
            mix: ClassMix::uniform(class("only")),
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let phases = [steady_phase(200.0, 2)];
        let a = generate(&phases, 9);
        let b = generate(&phases, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.class, y.class);
        }
        let c = generate(&phases, 10);
        assert_ne!(
            a.iter().map(|e| e.at).collect::<Vec<_>>(),
            c.iter().map(|e| e.at).collect::<Vec<_>>(),
            "different seeds must produce different traces"
        );
    }

    #[test]
    fn steady_rate_is_respected_in_expectation() {
        let events = generate(&[steady_phase(500.0, 4)], 1);
        let expected = 500.0 * 4.0;
        let n = events.len() as f64;
        assert!(
            (n - expected).abs() < expected * 0.15,
            "got {n} events, expected ~{expected}"
        );
        assert!(events.iter().all(|e| e.at < Duration::from_secs(4)));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn ramp_concentrates_arrivals_late() {
        let phases = [PhaseSpec {
            name: "ramp",
            process: ArrivalProcess::Ramp { start_rps: 10.0, end_rps: 500.0 },
            duration: Duration::from_secs(4),
            mix: ClassMix::uniform(class("only")),
        }];
        let events = generate(&phases, 2);
        let half = Duration::from_secs(2);
        let early = events.iter().filter(|e| e.at < half).count();
        let late = events.len() - early;
        assert!(
            late > early * 2,
            "ramp must back-load arrivals: early {early}, late {late}"
        );
    }

    #[test]
    fn heavy_tail_gaps_are_bounded_and_clumpier_than_poisson() {
        let secs = 8;
        let tail = generate(
            &[PhaseSpec {
                name: "tail",
                process: ArrivalProcess::HeavyTail { rps: 200.0, alpha: 1.3 },
                duration: Duration::from_secs(secs),
                mix: ClassMix::uniform(class("only")),
            }],
            3,
        );
        let poisson = generate(&[steady_phase(200.0, secs)], 3);
        let max_gap = |evs: &[TraceEvent]| {
            evs.windows(2)
                .map(|w| w[1].at - w[0].at)
                .max()
                .unwrap_or(Duration::ZERO)
        };
        // The cap: no gap may exceed 10× the mean (10/200 s = 50ms).
        assert!(max_gap(&tail) <= Duration::from_millis(50));
        assert!(
            max_gap(&tail) > max_gap(&poisson),
            "Pareto gaps must clump harder than Poisson at the same mean"
        );
    }

    #[test]
    fn class_mix_tracks_weights() {
        let mix = ClassMix::new(vec![(class("a"), 3.0), (class("b"), 1.0)]);
        let mut rng = SmallRng::seed_from_u64(4);
        let draws = 4000;
        let a = (0..draws).filter(|_| mix.pick(&mut rng).name == "a").count();
        let frac = a as f64 / draws as f64;
        assert!((frac - 0.75).abs() < 0.05, "weight-3/1 mix drew a {frac}");
    }

    #[test]
    fn phases_are_concatenated_in_order() {
        let events = generate(&[steady_phase(100.0, 1), steady_phase(100.0, 1)], 5);
        let boundary = Duration::from_secs(1);
        for e in &events {
            match e.phase {
                0 => assert!(e.at < boundary),
                1 => assert!(e.at >= boundary && e.at < boundary * 2),
                p => panic!("unexpected phase index {p}"),
            }
        }
        assert!(events.iter().any(|e| e.phase == 0));
        assert!(events.iter().any(|e| e.phase == 1));
    }
}
