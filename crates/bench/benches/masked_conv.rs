//! E5: kernel-level runtime of the masked convolution executor — the
//! "computation related can be thus skipped for efficiency" claim of
//! Fig. 1. Compares dense vs channel-masked vs column-masked vs both on a
//! VGG-shaped conv layer, using the *same* loop-nest executor so the
//! speedup is attributable to skipping alone.

use antidote_nn::masked::{dense_conv2d, masked_conv2d, FeatureMask, MacCounter};
use antidote_tensor::conv::ConvGeometry;
use antidote_tensor::init;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_masked_conv(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0xBE);
    let geom = ConvGeometry::new(3, 1, 1);
    // One VGG block-3-shaped layer at repro scale: 32ch 16x16.
    let (cin, cout, h, w) = (32usize, 32usize, 16usize, 16usize);
    let x = init::uniform(&mut rng, &[1, cin, h, w], 0.0, 1.0);
    let wt = init::kaiming_normal(&mut rng, &[cout, cin, 3, 3]);

    let half_channels = FeatureMask {
        channel: Some((0..cin).map(|i| i % 2 == 0).collect()),
        spatial: None,
    };
    let half_columns = FeatureMask {
        channel: None,
        spatial: Some((0..h * w).map(|p| p % 2 == 0).collect()),
    };
    let both = FeatureMask {
        channel: half_channels.channel.clone(),
        spatial: half_columns.spatial.clone(),
    };

    let mut group = c.benchmark_group("masked_conv_32ch_16x16");
    group.sample_size(20);
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(dense_conv2d(&x, &wt, None, geom, &mut counter))
        })
    });
    group.bench_function("channel_masked_50pct", |b| {
        let masks = vec![half_channels.clone()];
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(masked_conv2d(&x, &wt, None, geom, &masks, &mut counter))
        })
    });
    group.bench_function("column_masked_50pct", |b| {
        let masks = vec![half_columns.clone()];
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(masked_conv2d(&x, &wt, None, geom, &masks, &mut counter))
        })
    });
    group.bench_function("both_masked_50pct", |b| {
        let masks = vec![both.clone()];
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(masked_conv2d(&x, &wt, None, geom, &masks, &mut counter))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_masked_conv);
criterion_main!(benches);
