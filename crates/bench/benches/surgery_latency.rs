//! Deployment-artifact latency: dense VGG inference vs the physically
//! shrunk network (static masks compiled away by filter surgery) vs
//! dynamic attention masking through the masked executor.
//!
//! This quantifies the practical trade the paper discusses: static
//! pruning yields a smaller *dense* network (fast, but input-agnostic);
//! dynamic pruning keeps the full network and skips work per input.

use antidote_models::{Network, NoopHook, Vgg, VggConfig};
use antidote_nn::masked::MacCounter;
use antidote_nn::Mode;
use antidote_core::{DynamicPruner, PruneSchedule};
use antidote_tensor::init;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_surgery(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0x5A6);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_small(32, 10, 8));
    let x = init::uniform(&mut rng, &[1, 3, 32, 32], -1.0, 1.0);

    // Keep every other channel at every tap (a 50% static schedule).
    let masks: BTreeMap<usize, Vec<bool>> = net
        .taps()
        .iter()
        .map(|t| (t.id.0, (0..t.channels).map(|i| i % 2 == 0).collect()))
        .collect();
    let mut shrunk = net.shrink(&masks);
    let schedule = PruneSchedule::channel_only(vec![0.5; 5]);

    let mut group = c.benchmark_group("surgery/vgg_small_inference");
    group.sample_size(10);
    group.bench_function("dense_gemm", |b| {
        b.iter(|| black_box(net.forward(&x, Mode::Eval)))
    });
    group.bench_function("shrunk_gemm_50pct", |b| {
        b.iter(|| black_box(shrunk.forward(&x)))
    });
    group.bench_function("dynamic_masked_executor_50pct", |b| {
        b.iter(|| {
            let mut pruner = DynamicPruner::new(schedule.clone());
            let mut counter = MacCounter::new();
            black_box(net.forward_measured(&x, &mut pruner, &mut counter))
        })
    });
    group.bench_function("dense_loop_executor", |b| {
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(net.forward_measured(&x, &mut NoopHook, &mut counter))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_surgery);
criterion_main!(benches);
