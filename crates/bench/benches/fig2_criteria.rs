//! E2 (Fig. 2) kernel bench: one dynamic-pruning evaluation pass per
//! criterion (attention / random / inverse) on a briefly trained tiny
//! VGG — measures the per-criterion masking overhead.

use antidote_core::mask::Criterion as PruneCriterion;
use antidote_core::trainer::{evaluate, train, TrainConfig};
use antidote_core::{DynamicPruner, PruneSchedule};
use antidote_data::SynthConfig;
use antidote_models::{NoopHook, Vgg, VggConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_criteria(c: &mut Criterion) {
    let data = SynthConfig::tiny(3, 16).with_samples(12, 8).generate();
    let mut rng = SmallRng::seed_from_u64(0xF162);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
    train(
        &mut net,
        &data,
        &mut NoopHook,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::fast_test()
        },
    );
    let mut group = c.benchmark_group("fig2/eval_pass");
    group.sample_size(10);
    for (label, criterion) in [
        ("attention", PruneCriterion::Attention),
        ("random", PruneCriterion::Random),
        ("inverse", PruneCriterion::InverseAttention),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut pruner = DynamicPruner::new(PruneSchedule::channel_only(vec![0.0, 0.5]))
                    .with_criterion(criterion);
                black_box(evaluate(&mut net, &data.test, &mut pruner, 8))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_criteria);
criterion_main!(benches);
