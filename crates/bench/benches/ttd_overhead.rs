//! E6: training-time overhead of TTD's targeted dropout — one epoch of
//! plain training vs one epoch with the targeted-dropout hook active.
//! The paper argues TTD replaces post-hoc fine-tuning; this bench
//! quantifies what the hook costs per epoch.

use antidote_core::trainer::train_epoch;
use antidote_core::{DynamicPruner, PruneSchedule};
use antidote_data::SynthConfig;
use antidote_models::{NoopHook, Vgg, VggConfig};
use antidote_nn::optim::Sgd;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ttd_overhead(c: &mut Criterion) {
    let data = SynthConfig::tiny(3, 16).with_samples(8, 4).generate();
    let mut group = c.benchmark_group("ttd/one_epoch");
    group.sample_size(10);
    group.bench_function("plain", |b| {
        let mut rng = SmallRng::seed_from_u64(0x77D0);
        let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
        let mut sgd = Sgd::new(0.01).with_momentum(0.9);
        b.iter(|| {
            black_box(train_epoch(
                &mut net,
                &data.train,
                &mut NoopHook,
                &mut sgd,
                None,
                8,
                1,
                None,
            ))
        })
    });
    group.bench_function("targeted_dropout", |b| {
        let mut rng = SmallRng::seed_from_u64(0x77D0);
        let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
        let mut sgd = Sgd::new(0.01).with_momentum(0.9);
        let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![0.3, 0.5], vec![0.3, 0.0]));
        b.iter(|| {
            black_box(train_epoch(
                &mut net,
                &data.train,
                &mut pruner,
                &mut sgd,
                None,
                8,
                1,
                None,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ttd_overhead);
criterion_main!(benches);
