//! E3 (Fig. 3) kernel bench: a full block-sensitivity sweep (both blocks
//! × 4 ratios) on a briefly trained tiny VGG.

use antidote_core::analysis::block_sensitivity;
use antidote_core::trainer::{train, TrainConfig};
use antidote_data::SynthConfig;
use antidote_models::{NoopHook, Vgg, VggConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sensitivity(c: &mut Criterion) {
    let data = SynthConfig::tiny(3, 16).with_samples(12, 8).generate();
    let mut rng = SmallRng::seed_from_u64(0xF133);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
    train(
        &mut net,
        &data,
        &mut NoopHook,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::fast_test()
        },
    );
    let ratios = [0.0, 0.3, 0.6, 0.9];
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("block_sensitivity_sweep", |b| {
        b.iter(|| black_box(block_sensitivity(&mut net, &data.test, 2, &ratios, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
