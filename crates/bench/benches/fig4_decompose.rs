//! E4 (Fig. 4) kernel bench: channel/spatial redundancy decomposition on
//! every paper-scale configuration.

use antidote_core::flops::decompose;
use antidote_core::settings::{proposed_settings, Workload};
use antidote_models::{ResNetConfig, VggConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let settings = proposed_settings();
    let shapes: Vec<_> = settings
        .iter()
        .map(|s| match s.workload {
            Workload::Vgg16Cifar10 => VggConfig::vgg16(32, 10).conv_shapes(),
            Workload::ResNet56Cifar10 => ResNetConfig::resnet56(32, 10).conv_shapes(),
            Workload::Vgg16Cifar100 => VggConfig::vgg16(32, 100).conv_shapes(),
            Workload::Vgg16ImageNet100 => VggConfig::vgg16(224, 100).conv_shapes(),
        })
        .collect();
    c.bench_function("fig4/decompose_all_settings", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (setting, shape) in settings.iter().zip(&shapes) {
                let comp = decompose(shape, &setting.schedule);
                acc += comp.channel_pct + comp.spatial_pct + comp.combined_pct;
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
