//! E1 (Table I) kernel bench: analytic FLOPs evaluation over every
//! proposed setting at paper scale, plus one measured-MAC inference of
//! the repro-scale VGG, dense vs dynamically pruned.

use antidote_bench::{ReproWorkload, Scale};
use antidote_core::flops::analytic_flops;
use antidote_core::settings::{proposed_settings, Workload};
use antidote_core::{DynamicPruner, PruneSchedule};
use antidote_models::{NoopHook, ResNetConfig, VggConfig};
use antidote_nn::masked::MacCounter;
use antidote_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analytic(c: &mut Criterion) {
    let settings = proposed_settings();
    let shapes: Vec<_> = settings
        .iter()
        .map(|s| match s.workload {
            Workload::Vgg16Cifar10 => VggConfig::vgg16(32, 10).conv_shapes(),
            Workload::ResNet56Cifar10 => ResNetConfig::resnet56(32, 10).conv_shapes(),
            Workload::Vgg16Cifar100 => VggConfig::vgg16(32, 100).conv_shapes(),
            Workload::Vgg16ImageNet100 => VggConfig::vgg16(224, 100).conv_shapes(),
        })
        .collect();
    c.bench_function("table1/analytic_flops_all_settings", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (setting, shape) in settings.iter().zip(&shapes) {
                total += analytic_flops(shape, &setting.schedule).reduction_pct();
            }
            black_box(total)
        })
    });
}

fn bench_measured_inference(c: &mut Criterion) {
    let rw = ReproWorkload::for_workload(Workload::Vgg16Cifar10, Scale::Quick);
    let mut net = rw.build_network(0x7AB);
    let x = Tensor::zeros([1, 3, rw.data.image_size, rw.data.image_size]);
    let schedule = PruneSchedule::channel_only(vec![0.2, 0.2, 0.6, 0.9, 0.9]);

    let mut group = c.benchmark_group("table1/vgg_inference");
    group.sample_size(10);
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut counter = MacCounter::new();
            black_box(net.forward_measured(&x, &mut NoopHook, &mut counter));
            counter.total()
        })
    });
    group.bench_function("dynamic_pruned", |b| {
        b.iter(|| {
            let mut pruner = DynamicPruner::new(schedule.clone());
            let mut counter = MacCounter::new();
            black_box(net.forward_measured(&x, &mut pruner, &mut counter));
            counter.total()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytic, bench_measured_inference);
criterion_main!(benches);
