//! # antidote-baselines
//!
//! From-scratch re-implementations of the static filter-pruning baselines
//! AntiDote compares against in Table I:
//!
//! - ℓ1-norm pruning (Li et al., "Pruning Filters for Efficient
//!   ConvNets" \[8\]);
//! - first-order Taylor pruning (Molchanov et al. \[19\]);
//! - geometric-median pruning (He et al., CVPR 2019 \[20\]);
//! - functionality-oriented pruning (Qin et al., BMVC 2019 \[21\]).
//!
//! The paper only *cites* these methods' numbers; this crate actually
//! re-runs them on the same substrate, datasets and FLOPs accounting as
//! the dynamic method, so the Table I comparison is apples-to-apples at
//! reproduction scale. Static pruning is realized as *fixed* channel
//! masks ([`StaticMaskHook`]) — permanently removed filters, kept in mask
//! form so accuracy and measured MACs use the exact same executor as
//! AntiDote's dynamic masks.
//!
//! # Example
//!
//! ```
//! use antidote_baselines::{prune_statically, StaticMethod, StaticPruneConfig};
//! use antidote_core::{trainer::TrainConfig, PruneSchedule};
//! use antidote_data::SynthConfig;
//! use antidote_models::{Vgg, VggConfig};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let data = SynthConfig::tiny(2, 8).generate();
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
//! let cfg = StaticPruneConfig {
//!     method: StaticMethod::L1,
//!     schedule: PruneSchedule::channel_only(vec![0.25, 0.25]),
//!     finetune: TrainConfig { epochs: 1, ..TrainConfig::fast_test() },
//!     ranking_batches: 1,
//! };
//! let outcome = prune_statically(&mut net, &data, &cfg);
//! assert!(outcome.hook.keep_fraction(0) < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod ranking;
mod recording;
mod static_mask;

pub use pipeline::{prune_statically, StaticPruneConfig, StaticPruneOutcome};
pub use ranking::{rank_filters, FilterScores, StaticMethod};
pub use recording::ActivationRecorder;
pub use static_mask::StaticMaskHook;
