//! Filter-importance ranking criteria of the Table I baselines.
//!
//! Each criterion produces, per tap (= per prunable conv layer), one
//! score per output filter; static pruning then removes the
//! lowest-scored filters permanently.

use crate::recording::ActivationRecorder;
use antidote_data::{BatchIter, Split};
use antidote_models::Network;
use antidote_nn::loss::softmax_cross_entropy;
use antidote_nn::Mode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which static-pruning baseline ranks the filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticMethod {
    /// ℓ1-norm filter pruning (Li et al. \[8\]): score = Σ|W_filter|.
    L1,
    /// First-order Taylor pruning (Molchanov et al. \[19\]):
    /// score = |Σ W ⊙ ∂L/∂W| per filter, accumulated over data.
    Taylor,
    /// Geometric-median pruning (He et al. \[20\]): score = Σ_j ‖W_i − W_j‖
    /// (filters closest to the layer's geometric median are redundant).
    GeometricMedian,
    /// Functionality-oriented pruning (Qin et al. \[21\]): score = variance
    /// of the filter's class-conditional mean activations (filters that
    /// discriminate classes are functional).
    FunctionalityOriented,
}

impl StaticMethod {
    /// All four baselines, in Table I order.
    pub fn all() -> [StaticMethod; 4] {
        [
            StaticMethod::L1,
            StaticMethod::Taylor,
            StaticMethod::GeometricMedian,
            StaticMethod::FunctionalityOriented,
        ]
    }

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            StaticMethod::L1 => "L1 Pruning",
            StaticMethod::Taylor => "Taylor Pruning",
            StaticMethod::GeometricMedian => "GM Pruning",
            StaticMethod::FunctionalityOriented => "FO Pruning",
        }
    }
}

/// Per-tap filter scores: `scores[tap][filter]`, higher = more important.
pub type FilterScores = BTreeMap<usize, Vec<f32>>;

/// Ranks every tap's filters with `method`.
///
/// Weight-only criteria (L1, GM) need no data; data-driven criteria
/// (Taylor, FO) run up to `max_batches` minibatches of `split` through
/// the network.
pub fn rank_filters(
    net: &mut dyn Network,
    split: &Split,
    classes: usize,
    method: StaticMethod,
    batch_size: usize,
    max_batches: usize,
) -> FilterScores {
    match method {
        StaticMethod::L1 => l1_scores(net),
        StaticMethod::GeometricMedian => gm_scores(net),
        StaticMethod::Taylor => taylor_scores(net, split, batch_size, max_batches),
        StaticMethod::FunctionalityOriented => {
            fo_scores(net, split, classes, batch_size, max_batches)
        }
    }
}

fn l1_scores(net: &mut dyn Network) -> FilterScores {
    let mut scores = FilterScores::new();
    net.visit_tap_convs(&mut |tap, conv| {
        let w = conv.weight().value.data();
        let per_filter = w.len() / conv.out_channels();
        let s = (0..conv.out_channels())
            .map(|f| {
                w[f * per_filter..(f + 1) * per_filter]
                    .iter()
                    .map(|x| x.abs())
                    .sum()
            })
            .collect();
        scores.insert(tap, s);
    });
    scores
}

fn gm_scores(net: &mut dyn Network) -> FilterScores {
    let mut scores = FilterScores::new();
    net.visit_tap_convs(&mut |tap, conv| {
        let w = conv.weight().value.data();
        let cout = conv.out_channels();
        let per_filter = w.len() / cout;
        let filters: Vec<&[f32]> = (0..cout)
            .map(|f| &w[f * per_filter..(f + 1) * per_filter])
            .collect();
        let s = (0..cout)
            .map(|i| {
                (0..cout)
                    .map(|j| {
                        filters[i]
                            .iter()
                            .zip(filters[j])
                            .map(|(&a, &b)| (a - b) * (a - b))
                            .sum::<f32>()
                            .sqrt()
                    })
                    .sum()
            })
            .collect();
        scores.insert(tap, s);
    });
    scores
}

fn taylor_scores(
    net: &mut dyn Network,
    split: &Split,
    batch_size: usize,
    max_batches: usize,
) -> FilterScores {
    // Accumulate |Σ W ⊙ dW| per filter over a few minibatches.
    let mut acc: FilterScores = FilterScores::new();
    for (images, labels) in BatchIter::new(split, batch_size, Some(0x7A97)).take(max_batches) {
        let logits = net.forward(&images, Mode::Train);
        let out = softmax_cross_entropy(&logits, &labels);
        net.zero_grad();
        net.backward(&out.grad);
        net.visit_tap_convs(&mut |tap, conv| {
            let w = conv.weight().value.data();
            let g = conv.weight().grad.data();
            let cout = conv.out_channels();
            let per_filter = w.len() / cout;
            let entry = acc.entry(tap).or_insert_with(|| vec![0.0; cout]);
            for (f, slot) in entry.iter_mut().enumerate() {
                let dot: f32 = w[f * per_filter..(f + 1) * per_filter]
                    .iter()
                    .zip(&g[f * per_filter..(f + 1) * per_filter])
                    .map(|(&wv, &gv)| wv * gv)
                    .sum();
                *slot += dot.abs();
            }
        });
    }
    net.zero_grad();
    acc
}

fn fo_scores(
    net: &mut dyn Network,
    split: &Split,
    classes: usize,
    batch_size: usize,
    max_batches: usize,
) -> FilterScores {
    let mut recorder = ActivationRecorder::new(classes);
    for (images, labels) in BatchIter::new(split, batch_size, Some(0xF0)).take(max_batches) {
        recorder.set_labels(&labels);
        let _ = net.forward_hooked(&images, Mode::Eval, &mut recorder);
    }
    let mut scores = FilterScores::new();
    for tap in recorder.taps() {
        let means = recorder
            .class_means(tap)
            .expect("tap observed during recording");
        let c = means[0].len();
        // Variance of class-conditional means per channel: high variance
        // = class-discriminative = functional.
        let s = (0..c)
            .map(|ch| {
                let vals: Vec<f32> = means.iter().map(|m| m[ch]).collect();
                let mu = vals.iter().sum::<f32>() / vals.len() as f32;
                vals.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / vals.len() as f32
            })
            .collect();
        scores.insert(tap, s);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_data::SynthConfig;
    use antidote_models::{Network, Vgg, VggConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net_and_data() -> (Vgg, antidote_data::SynthDataset) {
        let data = SynthConfig::tiny(2, 8).generate();
        let mut rng = SmallRng::seed_from_u64(51);
        let net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
        (net, data)
    }

    #[test]
    fn every_method_scores_every_tap_and_filter() {
        let (mut net, data) = net_and_data();
        let n_taps = net.taps().len();
        for method in StaticMethod::all() {
            let scores = rank_filters(&mut net, &data.train, 2, method, 8, 2);
            assert_eq!(scores.len(), n_taps, "{method:?} must score every tap");
            for (tap, s) in &scores {
                let expected_c = net.taps()[*tap].channels;
                assert_eq!(s.len(), expected_c, "{method:?} tap {tap}");
                assert!(s.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn l1_prefers_larger_filters() {
        let (mut net, _) = net_and_data();
        // Inflate filter 0 of the first conv.
        let mut done = false;
        net.visit_params_mut(&mut |p| {
            if !done && p.value.dims().len() == 4 {
                let per = p.value.len() / p.value.dims()[0];
                for v in &mut p.value.data_mut()[0..per] {
                    *v += 10.0;
                }
                done = true;
            }
        });
        let scores = l1_scores(&mut net);
        let s0 = &scores[&0];
        assert!(s0[0] > s0[1] && s0[0] > s0[2]);
    }

    #[test]
    fn gm_scores_are_symmetric_zero_for_identical_filters() {
        let (mut net, _) = net_and_data();
        // Make all filters of conv 0 identical: every GM distance is 0.
        let mut done = false;
        net.visit_params_mut(&mut |p| {
            if !done && p.value.dims().len() == 4 {
                let per = p.value.len() / p.value.dims()[0];
                let first: Vec<f32> = p.value.data()[0..per].to_vec();
                let cout = p.value.dims()[0];
                for f in 1..cout {
                    p.value.data_mut()[f * per..(f + 1) * per].copy_from_slice(&first);
                }
                done = true;
            }
        });
        let scores = gm_scores(&mut net);
        assert!(scores[&0].iter().all(|&s| s.abs() < 1e-5));
    }

    #[test]
    fn taylor_scores_are_nonnegative_and_data_dependent() {
        let (mut net, data) = net_and_data();
        let scores = taylor_scores(&mut net, &data.train, 8, 2);
        for s in scores.values() {
            assert!(s.iter().all(|&v| v >= 0.0));
        }
        // At least one filter should have a nonzero score on real data.
        assert!(scores.values().any(|s| s.iter().any(|&v| v > 0.0)));
    }

    #[test]
    fn fo_scores_reward_class_discrimination() {
        let (mut net, data) = net_and_data();
        let scores = fo_scores(&mut net, &data.train, 2, 8, 3);
        assert_eq!(scores.len(), net.taps().len());
        for s in scores.values() {
            assert!(s.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn method_names() {
        assert_eq!(StaticMethod::L1.name(), "L1 Pruning");
        assert_eq!(StaticMethod::all().len(), 4);
    }
}
