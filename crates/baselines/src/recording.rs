//! Activation recording hook used by data-driven ranking methods
//! (Taylor, Functionality-Oriented).

use antidote_models::{FeatureHook, TapInfo};
use antidote_nn::masked::FeatureMask;
use antidote_nn::Mode;
use antidote_tensor::reduce::spatial_mean_per_channel;
use antidote_tensor::Tensor;
use std::collections::BTreeMap;

/// Records per-tap, per-channel activation statistics over a data pass,
/// optionally split by class (set the batch's labels with
/// [`ActivationRecorder::set_labels`] before each forward).
#[derive(Debug, Default)]
pub struct ActivationRecorder {
    labels: Vec<usize>,
    classes: usize,
    /// tap -> per-class per-channel activation sums, `(classes, C)` flat.
    class_sums: BTreeMap<usize, Vec<f64>>,
    /// tap -> per-class sample counts.
    class_counts: BTreeMap<usize, Vec<u64>>,
    /// tap -> channel count.
    channels: BTreeMap<usize, usize>,
}

impl ActivationRecorder {
    /// Creates a recorder for `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            ..Self::default()
        }
    }

    /// Sets the labels of the *next* batch to be forwarded.
    pub fn set_labels(&mut self, labels: &[usize]) {
        self.labels = labels.to_vec();
    }

    /// Mean activation per channel for `tap`, pooled over all classes.
    pub fn mean_activation(&self, tap: usize) -> Option<Vec<f32>> {
        let sums = self.class_sums.get(&tap)?;
        let counts = self.class_counts.get(&tap)?;
        let c = *self.channels.get(&tap)?;
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mut out = vec![0.0f32; c];
        for class in 0..self.classes {
            for (ch, o) in out.iter_mut().enumerate() {
                *o += sums[class * c + ch] as f32;
            }
        }
        for o in &mut out {
            *o /= total as f32;
        }
        Some(out)
    }

    /// Per-class mean activation matrix `(classes, C)` for `tap`.
    pub fn class_means(&self, tap: usize) -> Option<Vec<Vec<f32>>> {
        let sums = self.class_sums.get(&tap)?;
        let counts = self.class_counts.get(&tap)?;
        let c = *self.channels.get(&tap)?;
        Some(
            (0..self.classes)
                .map(|class| {
                    let n = counts[class].max(1) as f32;
                    (0..c).map(|ch| sums[class * c + ch] as f32 / n).collect()
                })
                .collect(),
        )
    }

    /// Taps observed so far.
    pub fn taps(&self) -> Vec<usize> {
        self.channels.keys().copied().collect()
    }
}

impl FeatureHook for ActivationRecorder {
    fn on_feature(
        &mut self,
        tap: TapInfo,
        feature: &Tensor,
        _mode: Mode,
    ) -> Option<Vec<FeatureMask>> {
        let (n, c, _, _) = feature.shape().as_nchw().expect("tap feature must be NCHW");
        assert_eq!(
            self.labels.len(),
            n,
            "set_labels must be called with the batch's labels before forward"
        );
        let att = spatial_mean_per_channel(feature);
        let sums = self
            .class_sums
            .entry(tap.id.0)
            .or_insert_with(|| vec![0.0; self.classes * c]);
        let counts = self
            .class_counts
            .entry(tap.id.0)
            .or_insert_with(|| vec![0; self.classes]);
        self.channels.insert(tap.id.0, c);
        for (ni, &label) in self.labels.iter().enumerate() {
            assert!(label < self.classes, "label out of range");
            for ch in 0..c {
                // Record magnitude: FO cares about response strength.
                sums[label * c + ch] += att.data()[ni * c + ch].abs() as f64;
            }
            counts[label] += 1;
        }
        None // recording only; never masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_models::TapId;

    fn tap(id: usize, channels: usize) -> TapInfo {
        TapInfo {
            id: TapId(id),
            block: 0,
            channels,
            spatial: 2,
        }
    }

    #[test]
    fn records_class_conditional_means() {
        let mut rec = ActivationRecorder::new(2);
        // item 0 (class 0): ch0 = 1, ch1 = 3; item 1 (class 1): ch0 = 5, ch1 = 7
        let f = Tensor::from_vec(
            vec![1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0, 5.0, 5.0, 5.0, 5.0, 7.0, 7.0, 7.0, 7.0],
            &[2, 2, 2, 2],
        )
        .unwrap();
        rec.set_labels(&[0, 1]);
        assert!(rec.on_feature(tap(0, 2), &f, Mode::Eval).is_none());
        let means = rec.class_means(0).unwrap();
        assert_eq!(means[0], vec![1.0, 3.0]);
        assert_eq!(means[1], vec![5.0, 7.0]);
        let pooled = rec.mean_activation(0).unwrap();
        assert_eq!(pooled, vec![3.0, 5.0]);
    }

    #[test]
    fn accumulates_across_batches() {
        let mut rec = ActivationRecorder::new(1);
        let f = Tensor::full([1, 1, 2, 2], 2.0);
        rec.set_labels(&[0]);
        rec.on_feature(tap(0, 1), &f, Mode::Eval);
        let g = Tensor::full([1, 1, 2, 2], 4.0);
        rec.set_labels(&[0]);
        rec.on_feature(tap(0, 1), &g, Mode::Eval);
        assert_eq!(rec.mean_activation(0).unwrap(), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "set_labels")]
    fn forgetting_labels_panics() {
        let mut rec = ActivationRecorder::new(1);
        let f = Tensor::zeros([2, 1, 2, 2]);
        rec.on_feature(tap(0, 1), &f, Mode::Eval);
    }

    #[test]
    fn unobserved_tap_is_none() {
        let rec = ActivationRecorder::new(1);
        assert!(rec.mean_activation(3).is_none());
    }
}
