//! Fixed (input-independent) pruning masks — the defining property of
//! static pruning, and the contrast class for AntiDote's dynamic masks.

use crate::ranking::FilterScores;
use antidote_core::PruneSchedule;
use antidote_models::{FeatureHook, TapInfo};
use antidote_nn::masked::FeatureMask;
use antidote_nn::Mode;
use antidote_tensor::reduce::topk_indices;
use antidote_tensor::Tensor;
use std::collections::BTreeMap;

/// A [`FeatureHook`] that applies the *same* channel keep-mask to every
/// input — permanent filter removal in mask form.
///
/// Built from per-filter scores and a per-block prune schedule: the
/// lowest-scored `ratio · C` filters of each tap are removed for good.
#[derive(Debug, Clone)]
pub struct StaticMaskHook {
    masks: BTreeMap<usize, Vec<bool>>,
}

impl StaticMaskHook {
    /// Builds static masks by keeping each tap's top-scored filters at
    /// the block's keep fraction.
    ///
    /// # Panics
    ///
    /// Panics if a tap present in `taps` is missing from `scores`.
    pub fn from_scores(
        scores: &FilterScores,
        taps: &[TapInfo],
        schedule: &PruneSchedule,
    ) -> Self {
        let mut masks = BTreeMap::new();
        for tap in taps {
            let keep = schedule.channel_keep(tap.block);
            if keep >= 1.0 {
                continue;
            }
            let s = scores
                .get(&tap.id.0)
                .unwrap_or_else(|| panic!("no scores for tap {}", tap.id.0));
            let k = ((keep * s.len() as f64).round() as usize).min(s.len());
            let mut mask = vec![false; s.len()];
            for i in topk_indices(s, k) {
                mask[i] = true;
            }
            masks.insert(tap.id.0, mask);
        }
        Self { masks }
    }

    /// Direct construction from explicit per-tap masks (tests).
    pub fn from_masks(masks: BTreeMap<usize, Vec<bool>>) -> Self {
        Self { masks }
    }

    /// The mask for `tap`, if that tap is pruned.
    pub fn mask(&self, tap: usize) -> Option<&[bool]> {
        self.masks.get(&tap).map(Vec::as_slice)
    }

    /// Fraction of filters kept at `tap` (1.0 if unpruned).
    pub fn keep_fraction(&self, tap: usize) -> f64 {
        self.masks.get(&tap).map_or(1.0, |m| {
            m.iter().filter(|&&b| b).count() as f64 / m.len() as f64
        })
    }
}

impl FeatureHook for StaticMaskHook {
    fn on_feature(
        &mut self,
        tap: TapInfo,
        feature: &Tensor,
        _mode: Mode,
    ) -> Option<Vec<FeatureMask>> {
        let mask = self.masks.get(&tap.id.0)?;
        let n = feature.dims()[0];
        assert_eq!(
            mask.len(),
            feature.dims()[1],
            "static mask channel count mismatch at tap {}",
            tap.id.0
        );
        Some(vec![
            FeatureMask {
                channel: Some(mask.clone()),
                spatial: None,
            };
            n
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_models::TapId;

    fn taps() -> Vec<TapInfo> {
        vec![
            TapInfo {
                id: TapId(0),
                block: 0,
                channels: 4,
                spatial: 4,
            },
            TapInfo {
                id: TapId(1),
                block: 1,
                channels: 4,
                spatial: 2,
            },
        ]
    }

    fn scores() -> FilterScores {
        let mut s = FilterScores::new();
        s.insert(0, vec![0.9, 0.1, 0.5, 0.7]);
        s.insert(1, vec![0.2, 0.8, 0.6, 0.4]);
        s
    }

    #[test]
    fn keeps_top_scored_filters() {
        let schedule = PruneSchedule::channel_only(vec![0.5, 0.5]);
        let hook = StaticMaskHook::from_scores(&scores(), &taps(), &schedule);
        assert_eq!(hook.mask(0).unwrap(), &[true, false, false, true]);
        assert_eq!(hook.mask(1).unwrap(), &[false, true, true, false]);
        assert!((hook.keep_fraction(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unpruned_blocks_have_no_mask() {
        let schedule = PruneSchedule::channel_only(vec![0.0, 0.5]);
        let hook = StaticMaskHook::from_scores(&scores(), &taps(), &schedule);
        assert!(hook.mask(0).is_none());
        assert_eq!(hook.keep_fraction(0), 1.0);
        assert!(hook.mask(1).is_some());
    }

    #[test]
    fn hook_emits_identical_masks_for_all_items() {
        let schedule = PruneSchedule::channel_only(vec![0.5]);
        let mut hook = StaticMaskHook::from_scores(&scores(), &taps()[..1], &schedule);
        let f = Tensor::from_fn([3, 4, 2, 2], |i| i as f32);
        let masks = hook.on_feature(taps()[0], &f, Mode::Eval).unwrap();
        assert_eq!(masks.len(), 3);
        assert_eq!(masks[0], masks[1]);
        assert_eq!(masks[1], masks[2]);
    }

    #[test]
    #[should_panic(expected = "no scores for tap")]
    fn missing_scores_panic() {
        let schedule = PruneSchedule::channel_only(vec![0.5, 0.5]);
        let empty = FilterScores::new();
        StaticMaskHook::from_scores(&empty, &taps(), &schedule);
    }
}
