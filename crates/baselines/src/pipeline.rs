//! The standard static-pruning pipeline: train → rank → prune → finetune.

use crate::ranking::{rank_filters, StaticMethod};
use crate::static_mask::StaticMaskHook;
use antidote_core::trainer::{evaluate, train, TrainConfig, TrainHistory};
use antidote_core::PruneSchedule;
use antidote_data::SynthDataset;
use antidote_models::Network;
use serde::{Deserialize, Serialize};

/// Configuration of a static prune-then-finetune run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticPruneConfig {
    /// Which ranking criterion to use.
    pub method: StaticMethod,
    /// Per-block channel prune ratios (static methods prune channels
    /// only, as in the cited papers).
    pub schedule: PruneSchedule,
    /// Fine-tuning hyper-parameters (static methods need this recovery
    /// phase; AntiDote's TTD explicitly does not).
    pub finetune: TrainConfig,
    /// Minibatches used by data-driven rankings.
    pub ranking_batches: usize,
}

/// Result of a static pruning run.
#[derive(Debug)]
pub struct StaticPruneOutcome {
    /// The fixed masks (also the evaluation hook).
    pub hook: StaticMaskHook,
    /// Fine-tuning history.
    pub finetune_history: TrainHistory,
    /// Test accuracy right after masking, before fine-tuning.
    pub pre_finetune_acc: f32,
    /// Test accuracy after fine-tuning.
    pub post_finetune_acc: f32,
}

/// Runs rank → mask → finetune on an already-trained network.
///
/// The returned hook must stay active at evaluation time (it *is* the
/// pruned architecture, kept in mask form so FLOPs can be measured with
/// the same executor as the dynamic method).
pub fn prune_statically(
    net: &mut dyn Network,
    data: &SynthDataset,
    cfg: &StaticPruneConfig,
) -> StaticPruneOutcome {
    let scores = rank_filters(
        net,
        &data.train,
        data.config.classes,
        cfg.method,
        cfg.finetune.batch_size,
        cfg.ranking_batches,
    );
    let taps = net.taps();
    let mut hook = StaticMaskHook::from_scores(&scores, &taps, &cfg.schedule);
    let pre_finetune_acc = evaluate(net, &data.test, &mut hook, cfg.finetune.batch_size);
    let finetune_history = train(net, data, &mut hook.clone(), &cfg.finetune);
    let post_finetune_acc = evaluate(net, &data.test, &mut hook, cfg.finetune.batch_size);
    StaticPruneOutcome {
        hook,
        finetune_history,
        pre_finetune_acc,
        post_finetune_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_core::trainer::evaluate_plain;
    use antidote_data::SynthConfig;
    use antidote_models::{NoopHook, Vgg, VggConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn full_pipeline_recovers_accuracy() {
        let data = SynthConfig::tiny(3, 8).with_samples(24, 8).generate();
        let mut rng = SmallRng::seed_from_u64(61);
        let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));
        // Pre-train.
        let pre_cfg = TrainConfig {
            epochs: 8,
            ..TrainConfig::fast_test()
        };
        train(&mut net, &data, &mut NoopHook, &pre_cfg);
        let base_acc = evaluate_plain(&mut net, &data.test, 16);

        let cfg = StaticPruneConfig {
            method: StaticMethod::L1,
            schedule: PruneSchedule::channel_only(vec![0.25, 0.25]),
            finetune: TrainConfig {
                epochs: 4,
                lr_max: 0.01,
                ..TrainConfig::fast_test()
            },
            ranking_batches: 2,
        };
        let outcome = prune_statically(&mut net, &data, &cfg);
        // Fine-tuning should not make things worse than the raw cut.
        assert!(
            outcome.post_finetune_acc + 1e-6 >= outcome.pre_finetune_acc - 0.15,
            "post={} pre={} base={}",
            outcome.post_finetune_acc,
            outcome.pre_finetune_acc,
            base_acc
        );
        // Masks exist for both blocks.
        assert!(outcome.hook.mask(0).is_some());
        assert!(outcome.hook.mask(1).is_some());
    }

    #[test]
    fn all_methods_run_end_to_end() {
        let data = SynthConfig::tiny(2, 8).with_samples(10, 4).generate();
        for method in StaticMethod::all() {
            let mut rng = SmallRng::seed_from_u64(62);
            let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
            let cfg = StaticPruneConfig {
                method,
                schedule: PruneSchedule::channel_only(vec![0.25, 0.5]),
                finetune: TrainConfig {
                    epochs: 1,
                    ..TrainConfig::fast_test()
                },
                ranking_batches: 1,
            };
            let outcome = prune_statically(&mut net, &data, &cfg);
            assert!(outcome.hook.keep_fraction(1) < 1.0, "{method:?}");
        }
    }
}
