//! ResNet filter surgery: equivalence with the masked network and real
//! parameter/MAC savings under the skip-connection constraint.

use antidote_models::{FeatureHook, Network, ResNet, ResNetConfig, TapInfo};
use antidote_nn::masked::FeatureMask;
use antidote_nn::Mode;
use antidote_tensor::{init, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

#[derive(Debug)]
struct FixedMasks(BTreeMap<usize, Vec<bool>>);

impl FeatureHook for FixedMasks {
    fn on_feature(
        &mut self,
        tap: TapInfo,
        feature: &Tensor,
        _mode: Mode,
    ) -> Option<Vec<FeatureMask>> {
        let mask = self.0.get(&tap.id.0)?;
        Some(vec![
            FeatureMask {
                channel: Some(mask.clone()),
                spatial: None,
            };
            feature.dims()[0]
        ])
    }
}

fn half_masks(net: &ResNet) -> BTreeMap<usize, Vec<bool>> {
    net.taps()
        .iter()
        .map(|t| (t.id.0, (0..t.channels).map(|i| i % 2 == 0).collect()))
        .collect()
}

#[test]
fn shrunk_resnet_equals_masked_resnet() {
    let mut rng = SmallRng::seed_from_u64(21);
    let mut net = ResNet::new(&mut rng, ResNetConfig::resnet_small(8, 3, 4));
    // Push some data through in train mode so BN running stats are
    // non-trivial, then compare eval paths.
    let warm = init::uniform(&mut rng, &[4, 3, 8, 8], -1.0, 1.0);
    let _ = net.forward(&warm, Mode::Train);

    let masks = half_masks(&net);
    let x = init::uniform(&mut rng, &[2, 3, 8, 8], -1.0, 1.0);
    let masked = net.forward_hooked(&x, Mode::Eval, &mut FixedMasks(masks.clone()));
    let mut small = net.shrink(&masks);
    let shrunk = small.forward(&x);
    assert!(
        masked.allclose(&shrunk, 1e-3),
        "resnet surgery must preserve logits"
    );
}

#[test]
fn shrunk_resnet_saves_params_and_macs() {
    let mut rng = SmallRng::seed_from_u64(22);
    let mut net = ResNet::new(&mut rng, ResNetConfig::resnet_small(16, 2, 8));
    let masks = half_masks(&net);
    let mut small = net.shrink(&masks);
    assert!(small.param_count() < net.param_count());
    let dense_macs: u64 = net
        .conv_shapes()
        .iter()
        .map(antidote_models::ConvShape::macs)
        .sum();
    // Both conv1 (half outputs) and conv2 (half inputs) shrink; block
    // outputs keep full width, so total savings sit between 25% and 60%.
    let shrunk_macs = small.macs();
    let ratio = shrunk_macs as f64 / dense_macs as f64;
    assert!(
        (0.4..0.85).contains(&ratio),
        "shrunk/dense MAC ratio {ratio} out of expected band"
    );
}

#[test]
fn identity_surgery_preserves_everything() {
    let mut rng = SmallRng::seed_from_u64(23);
    let mut net = ResNet::new(&mut rng, ResNetConfig::resnet_small(8, 2, 4));
    let x = init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0);
    let plain = net.forward(&x, Mode::Eval);
    let mut same = net.shrink(&BTreeMap::new());
    assert!(plain.allclose(&same.forward(&x), 1e-4));
}

#[test]
#[should_panic(expected = "mask length mismatch")]
fn wrong_mask_length_panics() {
    let mut rng = SmallRng::seed_from_u64(24);
    let net = ResNet::new(&mut rng, ResNetConfig::resnet_small(8, 2, 4));
    let mut masks = BTreeMap::new();
    masks.insert(0usize, vec![true; 3]);
    let _ = net.shrink(&masks);
}
