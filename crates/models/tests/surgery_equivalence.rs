//! Filter surgery must be semantics-preserving: the shrunk network's
//! logits equal the mask-multiplied network's logits for every input.

use antidote_models::{FeatureHook, Network, TapInfo, Vgg, VggConfig};
use antidote_nn::masked::FeatureMask;
use antidote_nn::Mode;
use antidote_tensor::{init, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Static hook replaying fixed per-tap channel masks.
#[derive(Debug)]
struct FixedMasks(BTreeMap<usize, Vec<bool>>);

impl FeatureHook for FixedMasks {
    fn on_feature(
        &mut self,
        tap: TapInfo,
        feature: &Tensor,
        _mode: Mode,
    ) -> Option<Vec<FeatureMask>> {
        let mask = self.0.get(&tap.id.0)?;
        Some(vec![
            FeatureMask {
                channel: Some(mask.clone()),
                spatial: None,
            };
            feature.dims()[0]
        ])
    }
}

fn masks_for(net_channels: &[usize], pattern: impl Fn(usize, usize) -> bool) -> BTreeMap<usize, Vec<bool>> {
    net_channels
        .iter()
        .enumerate()
        .map(|(tap, &c)| (tap, (0..c).map(|i| pattern(tap, i)).collect()))
        .collect()
}

fn tap_channels(net: &Vgg) -> Vec<usize> {
    net.taps().iter().map(|t| t.channels).collect()
}

#[test]
fn shrunk_equals_masked_plain_vgg() {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));
    let masks = masks_for(&tap_channels(&net), |_, i| i % 2 == 0);
    let x = init::uniform(&mut rng, &[3, 3, 8, 8], -1.0, 1.0);
    let masked = net.forward_hooked(&x, Mode::Eval, &mut FixedMasks(masks.clone()));
    let mut small = net.shrink(&masks);
    let shrunk = small.forward(&x);
    assert!(
        masked.allclose(&shrunk, 1e-4),
        "surgery must preserve logits exactly"
    );
}

#[test]
fn shrunk_equals_masked_batchnorm_vgg() {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2).with_batchnorm());
    // Uneven masks: keep 3 of 4 at tap 0, 2 of 8 at tap 1.
    let mut masks = BTreeMap::new();
    masks.insert(0usize, vec![true, true, true, false]);
    masks.insert(1usize, vec![false, true, false, false, false, false, true, false]);
    let x = init::uniform(&mut rng, &[2, 3, 8, 8], -1.0, 1.0);
    let masked = net.forward_hooked(&x, Mode::Eval, &mut FixedMasks(masks.clone()));
    let mut small = net.shrink(&masks);
    assert!(masked.allclose(&small.forward(&x), 1e-4));
}

#[test]
fn shrunk_has_fewer_params_and_macs() {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let masks = masks_for(&tap_channels(&net), |_, i| i % 2 == 0);
    let mut small = net.shrink(&masks);
    assert!(small.param_count() < net.param_count());
    // Dense MACs of the original (tap 0 halves conv2's input AND conv1's
    // output; both layers shrink).
    let full_macs: u64 = net
        .conv_shapes()
        .iter()
        .map(antidote_models::ConvShape::macs)
        .sum();
    assert!(small.macs(8, 8) < full_macs);
    // conv1: 3->2 out (half), conv2: 2 in, 4 out => about a quarter of
    // the original conv work plus the halved classifier.
    assert!(small.macs(8, 8) < full_macs * 6 / 10);
}

#[test]
fn missing_masks_mean_identity_surgery() {
    let mut rng = SmallRng::seed_from_u64(4);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let x = init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0);
    let plain = net.forward(&x, Mode::Eval);
    let mut same = net.shrink(&BTreeMap::new());
    assert!(plain.allclose(&same.forward(&x), 1e-4));
    assert_eq!(same.param_count(), net.param_count());
}

#[test]
#[should_panic(expected = "mask length mismatch")]
fn wrong_mask_length_panics() {
    let mut rng = SmallRng::seed_from_u64(5);
    let net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let mut masks = BTreeMap::new();
    masks.insert(0usize, vec![true; 99]);
    let _ = net.shrink(&masks);
}
