//! Eval-only int8-quantized VGG (ISSUE 5 tentpole).
//!
//! [`QuantizedVgg`] is a post-training-quantized snapshot of a trained
//! [`Vgg`]: every convolution's weights are symmetrically quantized per
//! output channel (see `antidote_tensor::quant`), and each conv carries
//! the per-tensor activation scale its *input* was calibrated to.
//! Batch norm, ReLU, pooling and the classifier stay fp32 — together
//! they are well under 1% of the network's MACs, and keeping the
//! classifier in fp32 avoids quantizing the logits the accuracy gate
//! compares.
//!
//! Scale plumbing: conv 0 consumes the network input, so it gets the
//! calibrated input scale. Conv *i* (*i* ≥ 1) consumes tap *i−1*'s
//! output (the post-BN+ReLU map) — max pooling can only select existing
//! values and 0/1 pruning masks can only zero them, so neither grows
//! the absmax and tap *i−1*'s calibrated scale stays valid at conv
//! *i*'s input.
//!
//! The struct implements [`Network`] so serving and evaluation code is
//! generic over the numeric domain, but it is strictly an inference
//! artifact: [`Network::backward`] panics and
//! [`Network::visit_params_mut`] visits nothing (int8 weights are not
//! trainable parameters).

use crate::config::ConvShape;
use crate::network::Network;
use crate::profiled::profiled_quantized_conv;
use crate::tap::{masks_to_tensor, FeatureHook, TapId, TapInfo};
use crate::vgg::{pool_mask, Op, Vgg};
use antidote_nn::layers::{BatchNorm2d, Flatten, Linear, MaxPool2d, Relu};
use antidote_nn::masked::{FeatureMask, MacCounter};
use antidote_nn::quant::QuantizedConv2d;
use antidote_nn::{Layer, Mode, Parameter};
use antidote_tensor::conv::ConvGeometry;
use antidote_tensor::quant::QuantizedMatrix;
use antidote_tensor::Tensor;

/// One element of the quantized op sequence (eval-only, so taps carry
/// no backward mask cache).
#[derive(Debug)]
enum QOp {
    Conv(QuantizedConv2d),
    Bn(BatchNorm2d),
    Relu(Relu),
    Pool(MaxPool2d),
    Flatten(Flatten),
    Linear(Linear),
    Tap(TapInfo),
}

/// An int8 post-training-quantized [`Vgg`], for evaluation and serving.
#[derive(Debug)]
pub struct QuantizedVgg {
    config: crate::VggConfig,
    ops: Vec<QOp>,
    taps: Vec<TapInfo>,
}

/// One conv layer's stored parts: int8 weights with per-row scales,
/// fp32 bias, and the calibrated input-activation scale.
#[derive(Debug, Clone)]
pub struct QuantizedConvParts {
    /// `(Cout, Cin·K·K)` int8 filter matrix with per-row scales.
    pub qweight: QuantizedMatrix,
    /// Full-precision bias, length `Cout`.
    pub bias: Vec<f32>,
    /// Calibrated per-tensor scale of the layer's input activation.
    pub act_scale: f32,
}

/// One batch norm's stored parts (all rank-1 of length `Cout`).
#[derive(Debug, Clone)]
pub struct BnParts {
    /// Learned scale γ.
    pub gamma: Tensor,
    /// Learned shift β.
    pub beta: Tensor,
    /// Running activation mean.
    pub running_mean: Tensor,
    /// Running activation variance.
    pub running_var: Tensor,
}

/// The weight-carrying parts of a [`QuantizedVgg`] in forward order,
/// with the structural ops (ReLU, pooling, flatten, taps) omitted —
/// [`QuantizedVgg::from_parts`] rebuilds those from the
/// [`crate::VggConfig`]. This is the interchange type the model-file
/// layer serializes: int8 weights travel as raw bytes plus scales and
/// never round-trip through fp32.
#[derive(Debug, Clone)]
pub struct QuantizedVggParts {
    /// Quantized convolutions in forward order.
    pub convs: Vec<QuantizedConvParts>,
    /// Batch norms in forward order (one per conv when the config
    /// enables batch norm, empty otherwise).
    pub bns: Vec<BnParts>,
    /// Classifier weight, `(classes, classifier_inputs)`.
    pub linear_weight: Tensor,
    /// Classifier bias, `(classes,)`.
    pub linear_bias: Tensor,
}

impl QuantizedVgg {
    /// Quantizes a trained network given calibrated activation scales.
    ///
    /// `input_scale` is the int8 scale of the network input; of
    /// `tap_scales` (one per tap, in tap order) the first `convs − 1`
    /// entries feed convs `1..convs` as described in the module docs.
    /// `core::quant::calibrate` produces both from held-out batches.
    ///
    /// # Panics
    ///
    /// Panics if `tap_scales.len()` differs from the tap count or any
    /// scale is non-finite or non-positive.
    pub fn from_vgg(vgg: &Vgg, input_scale: f32, tap_scales: &[f32]) -> Self {
        assert_eq!(
            tap_scales.len(),
            vgg.taps.len(),
            "need one activation scale per tap"
        );
        let mut ops = Vec::with_capacity(vgg.ops.len());
        let mut conv_idx = 0usize;
        for op in &vgg.ops {
            ops.push(match op {
                Op::Conv(conv) => {
                    let act_scale = if conv_idx == 0 {
                        input_scale
                    } else {
                        tap_scales[conv_idx - 1]
                    };
                    conv_idx += 1;
                    QOp::Conv(QuantizedConv2d::from_conv(conv, act_scale))
                }
                Op::Bn(bn) => QOp::Bn(BatchNorm2d::from_parts(
                    bn.gamma().value.clone(),
                    bn.beta().value.clone(),
                    bn.running_mean().clone(),
                    bn.running_var().clone(),
                )),
                Op::Relu(_) => QOp::Relu(Relu::new()),
                Op::Pool(p) => QOp::Pool(MaxPool2d::new(p.window())),
                Op::Flatten(_) => QOp::Flatten(Flatten::new()),
                Op::Linear(fc) => QOp::Linear(Linear::from_parts(
                    fc.weight().value.clone(),
                    fc.bias().value.clone(),
                )),
                Op::Tap { info, .. } => QOp::Tap(*info),
            });
        }
        Self {
            config: vgg.config.clone(),
            ops,
            taps: vgg.taps.clone(),
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &crate::VggConfig {
        &self.config
    }

    /// Exports the weight-carrying layers for serialization (the
    /// inverse of [`QuantizedVgg::from_parts`]).
    pub fn to_parts(&self) -> QuantizedVggParts {
        let mut convs = Vec::new();
        let mut bns = Vec::new();
        let mut linear = None;
        for op in &self.ops {
            match op {
                QOp::Conv(c) => convs.push(QuantizedConvParts {
                    qweight: c.qweight().clone(),
                    bias: c.bias().to_vec(),
                    act_scale: c.act_scale(),
                }),
                QOp::Bn(bn) => bns.push(BnParts {
                    gamma: bn.gamma().value.clone(),
                    beta: bn.beta().value.clone(),
                    running_mean: bn.running_mean().clone(),
                    running_var: bn.running_var().clone(),
                }),
                QOp::Linear(fc) => {
                    linear = Some((fc.weight().value.clone(), fc.bias().value.clone()))
                }
                _ => {}
            }
        }
        let (linear_weight, linear_bias) = linear.expect("a QuantizedVgg always has a classifier");
        QuantizedVggParts {
            convs,
            bns,
            linear_weight,
            linear_bias,
        }
    }

    /// Rebuilds a quantized network from stored parts, validating every
    /// dimension against `config` first — the model-file loader's
    /// constructor, which must reject hostile input with an error
    /// rather than a panic.
    ///
    /// Identical parts produce a network whose forward pass is
    /// bit-identical to the exporting one: the int8 weights, scales and
    /// fp32 tensors are used verbatim.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency (config
    /// invariant, layer count, tensor shape, non-finite value, or
    /// non-positive activation scale).
    pub fn from_parts(
        config: crate::VggConfig,
        parts: QuantizedVggParts,
    ) -> Result<Self, String> {
        config.validate()?;
        let shapes = config.conv_shapes();
        if parts.convs.len() != shapes.len() {
            return Err(format!(
                "{} conv layers stored but config declares {}",
                parts.convs.len(),
                shapes.len()
            ));
        }
        let want_bns = if config.batchnorm { shapes.len() } else { 0 };
        if parts.bns.len() != want_bns {
            return Err(format!(
                "{} batch norms stored but config needs {want_bns}",
                parts.bns.len()
            ));
        }
        let finite = |name: &str, data: &[f32]| -> Result<(), String> {
            if data.iter().all(|v| v.is_finite()) {
                Ok(())
            } else {
                Err(format!("{name} contains non-finite values"))
            }
        };
        for (i, (cp, shape)) in parts.convs.iter().zip(&shapes).enumerate() {
            let q = &cp.qweight;
            let want_cols = shape.in_channels * shape.kernel * shape.kernel;
            if q.rows != shape.out_channels || q.cols != want_cols {
                return Err(format!(
                    "conv {i} weight is {}x{} but config needs {}x{want_cols}",
                    q.rows, q.cols, shape.out_channels
                ));
            }
            let want_len = q
                .rows
                .checked_mul(q.cols)
                .ok_or_else(|| format!("conv {i} weight size overflows"))?;
            if q.data.len() != want_len {
                return Err(format!("conv {i} weight holds {} bytes, needs {want_len}", q.data.len()));
            }
            if q.scales.len() != q.rows || cp.bias.len() != q.rows {
                return Err(format!("conv {i} scales/bias length must equal {}", q.rows));
            }
            if !(cp.act_scale.is_finite() && cp.act_scale > 0.0) {
                return Err(format!(
                    "conv {i} activation scale {} must be positive and finite",
                    cp.act_scale
                ));
            }
            if q.scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(format!("conv {i} weight scales must be finite and non-negative"));
            }
            finite(&format!("conv {i} bias"), &cp.bias)?;
        }
        for (i, (bn, shape)) in parts.bns.iter().zip(&shapes).enumerate() {
            let want = [shape.out_channels];
            for (name, t) in [
                ("gamma", &bn.gamma),
                ("beta", &bn.beta),
                ("running_mean", &bn.running_mean),
                ("running_var", &bn.running_var),
            ] {
                if t.dims() != want {
                    return Err(format!(
                        "bn {i} {name} has shape {:?}, needs {want:?}",
                        t.dims()
                    ));
                }
                finite(&format!("bn {i} {name}"), t.data())?;
            }
        }
        let want_w = [config.classes, config.classifier_inputs()];
        if parts.linear_weight.dims() != want_w {
            return Err(format!(
                "classifier weight has shape {:?}, needs {want_w:?}",
                parts.linear_weight.dims()
            ));
        }
        if parts.linear_bias.dims() != [config.classes] {
            return Err(format!(
                "classifier bias has shape {:?}, needs [{}]",
                parts.linear_bias.dims(),
                config.classes
            ));
        }
        finite("classifier weight", parts.linear_weight.data())?;
        finite("classifier bias", parts.linear_bias.data())?;

        // Everything checked; rebuild the op sequence exactly as
        // `Vgg::new` lays it out (conv, [bn], relu, tap per layer; pool
        // per block; flatten + linear).
        let mut ops = Vec::new();
        let mut taps = Vec::new();
        let mut convs = parts.convs.into_iter();
        let mut bns = parts.bns.into_iter();
        let mut shape_iter = shapes.iter();
        let mut tap_idx = 0usize;
        for (b, block) in config.blocks.iter().enumerate() {
            let spatial = config.block_spatial(b);
            for _ in 0..block.layers {
                let cp = convs.next().expect("validated conv count");
                let shape = shape_iter.next().expect("validated conv count");
                ops.push(QOp::Conv(QuantizedConv2d::from_parts(
                    cp.qweight,
                    cp.bias,
                    cp.act_scale,
                    shape.in_channels,
                    ConvGeometry::new(shape.kernel, 1, 1),
                )));
                if config.batchnorm {
                    let bn = bns.next().expect("validated bn count");
                    ops.push(QOp::Bn(BatchNorm2d::from_parts(
                        bn.gamma,
                        bn.beta,
                        bn.running_mean,
                        bn.running_var,
                    )));
                }
                ops.push(QOp::Relu(Relu::new()));
                let info = TapInfo {
                    id: TapId(tap_idx),
                    block: b,
                    channels: block.channels,
                    spatial,
                };
                taps.push(info);
                ops.push(QOp::Tap(info));
                tap_idx += 1;
            }
            ops.push(QOp::Pool(MaxPool2d::new(2)));
        }
        ops.push(QOp::Flatten(Flatten::new()));
        ops.push(QOp::Linear(Linear::from_parts(
            parts.linear_weight,
            parts.linear_bias,
        )));
        Ok(Self { config, ops, taps })
    }
}

impl Network for QuantizedVgg {
    fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FeatureHook,
    ) -> Tensor {
        assert!(
            !mode.is_train(),
            "QuantizedVgg is eval-only; train on the fp32 network"
        );
        let mut counter = MacCounter::new();
        self.forward_measured(input, hook, &mut counter)
    }

    fn backward(&mut self, _grad_logits: &Tensor) -> Tensor {
        panic!("QuantizedVgg is an eval-only inference artifact; it has no backward pass");
    }

    fn forward_measured(
        &mut self,
        input: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
    ) -> Tensor {
        let mode = Mode::Eval;
        let mut x = input.clone();
        // Masks from the most recent tap, consumed by the next conv —
        // identical plumbing to the fp32 `Vgg::forward_measured`.
        let mut pending: Option<Vec<FeatureMask>> = None;
        let mut conv_idx = 0usize;
        for op in &mut self.ops {
            x = match op {
                QOp::Conv(l) => {
                    let n = x.dims()[0];
                    let masks = pending
                        .take()
                        .unwrap_or_else(|| vec![FeatureMask::keep_all(); n]);
                    let out = profiled_quantized_conv(conv_idx, &x, l, &masks, counter);
                    conv_idx += 1;
                    out
                }
                QOp::Bn(l) => l.forward(&x, mode),
                QOp::Relu(l) => l.forward(&x, mode),
                QOp::Pool(l) => {
                    let (_, _, h, w) = x.shape().as_nchw().expect("pool expects NCHW");
                    if let Some(masks) = pending.take() {
                        pending = Some(
                            masks
                                .iter()
                                .map(|m| pool_mask(m, h, w, l.window()))
                                .collect(),
                        );
                    }
                    l.forward(&x, mode)
                }
                QOp::Flatten(l) => l.forward(&x, mode),
                QOp::Linear(l) => {
                    let _s = antidote_obs::span("fwd.linear");
                    counter.add(l.macs() * x.dims()[0] as u64);
                    l.forward(&x, mode)
                }
                QOp::Tap(info) => {
                    if let Some(item_masks) = hook.on_feature(*info, &x, mode) {
                        let (n, c, h, w) = x.shape().as_nchw().expect("tap expects NCHW");
                        let m = masks_to_tensor(&item_masks, n, c, h, w);
                        let masked = x.zip(&m, |a, b| a * b);
                        pending = Some(item_masks);
                        masked
                    } else {
                        pending = None;
                        x
                    }
                }
            };
        }
        x
    }

    fn visit_params_mut(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {
        // Int8 weights are frozen inference constants, not parameters.
    }

    fn taps(&self) -> Vec<TapInfo> {
        self.taps.clone()
    }

    fn visit_tap_convs(&self, _visitor: &mut dyn FnMut(usize, &antidote_nn::layers::Conv2d)) {
        // The fp32 tap convs no longer exist; static-pruning baselines
        // rank filters on the fp32 network before quantization.
    }

    fn conv_shapes(&self) -> Vec<ConvShape> {
        self.config.conv_shapes()
    }

    fn describe(&self) -> String {
        format!(
            "int8-quantized vgg(blocks={:?}, input={}x{}, classes={})",
            self.config
                .blocks
                .iter()
                .map(|b| (b.layers, b.channels))
                .collect::<Vec<_>>(),
            self.config.input_size,
            self.config.input_size,
            self.config.classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::NoopHook;
    use crate::VggConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn trained_pair() -> (Vgg, QuantizedVgg) {
        let mut rng = SmallRng::seed_from_u64(3);
        let vgg = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));
        // Weights at init are already representative enough for scale
        // math; a generous activation scale keeps everything in range.
        let scales = vec![0.05f32; vgg.taps.len()];
        let q = QuantizedVgg::from_vgg(&vgg, 0.01, &scales);
        (vgg, q)
    }

    #[test]
    fn quantized_forward_tracks_fp32_logits() {
        let (mut vgg, mut q) = trained_pair();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| ((i as f32 * 0.013).sin()) * 0.5);
        let mut cf = MacCounter::new();
        let yf = vgg.forward_measured(&x, &mut NoopHook, &mut cf);
        let mut cq = MacCounter::new();
        let yq = q.forward_measured(&x, &mut NoopHook, &mut cq);
        assert_eq!(yf.dims(), yq.dims());
        assert_eq!(cf.total(), cq.total(), "counted MACs must match fp32");
        // Same argmax per item: quantization noise must not flip the
        // prediction on a smooth input.
        for item in 0..2 {
            let row = |t: &Tensor| {
                let d = t.data();
                let c = t.dims()[1];
                (0..c)
                    .max_by(|&a, &b| d[item * c + a].total_cmp(&d[item * c + b]))
                    .unwrap()
            };
            assert_eq!(row(&yf), row(&yq), "argmax flipped on item {item}");
        }
    }

    #[test]
    fn masked_quantized_forward_counts_fewer_macs() {
        #[derive(Debug)]
        struct HalfChannels;
        impl FeatureHook for HalfChannels {
            fn on_feature(
                &mut self,
                _tap: TapInfo,
                feature: &Tensor,
                _mode: Mode,
            ) -> Option<Vec<FeatureMask>> {
                let (n, c, _, _) = feature.shape().as_nchw().unwrap();
                let ch: Vec<bool> = (0..c).map(|i| i % 2 == 0).collect();
                Some(vec![
                    FeatureMask {
                        channel: Some(ch),
                        spatial: None
                    };
                    n
                ])
            }
        }
        let (mut vgg, mut q) = trained_pair();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| ((i as f32 * 0.021).cos()) * 0.5);
        let mut dense = MacCounter::new();
        let _ = q.forward_measured(&x, &mut NoopHook, &mut dense);
        let mut pruned = MacCounter::new();
        let _ = q.forward_measured(&x, &mut HalfChannels, &mut pruned);
        assert!(pruned.total() < dense.total());
        // And the pruned count agrees with the fp32 masked executor.
        let mut fp32_pruned = MacCounter::new();
        let _ = vgg.forward_measured(&x, &mut HalfChannels, &mut fp32_pruned);
        assert_eq!(pruned.total(), fp32_pruned.total());
    }

    #[test]
    fn eval_only_contract() {
        let (_, mut q) = trained_pair();
        let x = Tensor::zeros([1, 3, 8, 8]);
        // Eval-mode hooked forward works…
        let y = q.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 3]);
        // …and the network exposes no trainable parameters.
        assert_eq!(q.param_count(), 0);
        assert!(q.describe().starts_with("int8-quantized vgg"));
        assert_eq!(q.taps().len(), 2);
        assert_eq!(q.conv_shapes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "eval-only")]
    fn train_mode_forward_panics() {
        let (_, mut q) = trained_pair();
        let _ = q.forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Train);
    }

    #[test]
    #[should_panic(expected = "eval-only")]
    fn backward_panics() {
        let (_, mut q) = trained_pair();
        let _ = q.backward(&Tensor::zeros([1, 3]));
    }

    #[test]
    fn scale_count_mismatch_panics() {
        let (vgg, _) = trained_pair();
        let result = std::panic::catch_unwind(|| QuantizedVgg::from_vgg(&vgg, 0.01, &[0.05]));
        assert!(result.is_err());
    }

    #[test]
    fn parts_round_trip_is_bit_exact() {
        let (_, mut q) = trained_pair();
        let mut rebuilt =
            QuantizedVgg::from_parts(q.config().clone(), q.to_parts()).expect("valid parts");
        let x = Tensor::from_fn([2, 3, 8, 8], |i| ((i as f32 * 0.017).sin()) * 0.4);
        let mut ca = MacCounter::new();
        let ya = q.forward_measured(&x, &mut NoopHook, &mut ca);
        let mut cb = MacCounter::new();
        let yb = rebuilt.forward_measured(&x, &mut NoopHook, &mut cb);
        assert_eq!(ca.total(), cb.total());
        assert!(ya
            .data()
            .iter()
            .zip(yb.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(q.taps().len(), rebuilt.taps().len());
        assert_eq!(q.describe(), rebuilt.describe());
    }

    #[test]
    fn parts_round_trip_with_batchnorm() {
        let mut rng = SmallRng::seed_from_u64(9);
        let vgg = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3).with_batchnorm());
        let scales = vec![0.05f32; vgg.taps.len()];
        let mut q = QuantizedVgg::from_vgg(&vgg, 0.01, &scales);
        let mut rebuilt =
            QuantizedVgg::from_parts(q.config().clone(), q.to_parts()).expect("valid parts");
        let x = Tensor::from_fn([1, 3, 8, 8], |i| ((i as f32 * 0.031).cos()) * 0.3);
        let ya = q.forward(&x, Mode::Eval);
        let yb = rebuilt.forward(&x, Mode::Eval);
        assert!(ya
            .data()
            .iter()
            .zip(yb.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn from_parts_rejects_inconsistent_input_without_panicking() {
        let (_, q) = trained_pair();
        let cfg = q.config().clone();

        // Wrong conv count.
        let mut parts = q.to_parts();
        parts.convs.pop();
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Wrong weight shape.
        let mut parts = q.to_parts();
        parts.convs[0].qweight.rows += 1;
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Truncated scales.
        let mut parts = q.to_parts();
        parts.convs[1].qweight.scales.pop();
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Bad activation scale.
        let mut parts = q.to_parts();
        parts.convs[0].act_scale = f32::NAN;
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Non-finite classifier weight.
        let mut parts = q.to_parts();
        parts.linear_weight.data_mut()[0] = f32::INFINITY;
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Wrong classifier bias shape.
        let mut parts = q.to_parts();
        parts.linear_bias = Tensor::zeros([cfg.classes + 1]);
        assert!(QuantizedVgg::from_parts(cfg.clone(), parts).is_err());

        // Missing batch norms for a batchnorm config.
        let parts = q.to_parts();
        assert!(QuantizedVgg::from_parts(cfg.with_batchnorm(), parts).is_err());

        // Invalid config.
        let mut cfg_bad = q.config().clone();
        cfg_bad.input_size = 7;
        assert!(QuantizedVgg::from_parts(cfg_bad, q.to_parts()).is_err());
    }

    #[test]
    fn quantized_vgg_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantizedVgg>();
    }
}
