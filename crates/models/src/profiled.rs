//! Per-layer profiling shim for the measured forward paths.
//!
//! `forward_measured` implementations route every conv that appears in
//! [`crate::ConvShape`] order through [`profiled_masked_conv`], which
//! tags the call with the layer's forward-order index. With
//! observability enabled (`antidote_obs::enabled`) each layer gets:
//!
//! - a span `fwd.layerNN` (wall-clock time, aggregated across calls);
//! - a counter `fwd.layerNN.macs` (MACs the masked executor performed).
//!
//! Layer indices match `Network::conv_shapes()` exactly, so snapshots
//! join 1:1 against `core::flops::analytic_flops` per-layer rows — the
//! contract `profile_report` and the attribution property tests rely
//! on. ResNet skip projections are *not* in `conv_shapes` and are
//! timed under the aggregate `fwd.projection` span instead. Disabled,
//! the shim costs one atomic load per conv.

use antidote_nn::layers::Conv2d;
use antidote_nn::masked::{masked_conv2d, FeatureMask, MacCounter};
use antidote_nn::quant::{quantized_masked_conv2d, QuantizedConv2d};
use antidote_tensor::Tensor;

/// Runs `conv` through the masked executor, attributing time and MACs
/// to forward-order layer `layer_idx`.
pub(crate) fn profiled_masked_conv(
    layer_idx: usize,
    input: &Tensor,
    conv: &Conv2d,
    masks: &[FeatureMask],
    counter: &mut MacCounter,
) -> Tensor {
    let _span = antidote_obs::layer_span("fwd", layer_idx);
    let before = counter.total();
    let out = masked_conv2d(
        input,
        &conv.weight().value,
        Some(&conv.bias().value),
        conv.geometry(),
        masks,
        counter,
    );
    if antidote_obs::enabled() {
        antidote_obs::counter_add(
            &format!("fwd.layer{layer_idx:02}.macs"),
            counter.total() - before,
        );
    }
    out
}

/// Int8 twin of [`profiled_masked_conv`]: routes through the quantized
/// masked executor under the same `fwd.layerNN` span and
/// `fwd.layerNN.macs` counter, so profiling snapshots of a quantized
/// serving path join against analytic FLOPs exactly like the fp32 path.
pub(crate) fn profiled_quantized_conv(
    layer_idx: usize,
    input: &Tensor,
    conv: &QuantizedConv2d,
    masks: &[FeatureMask],
    counter: &mut MacCounter,
) -> Tensor {
    let _span = antidote_obs::layer_span("fwd", layer_idx);
    let before = counter.total();
    let out = quantized_masked_conv2d(input, conv, masks, counter);
    if antidote_obs::enabled() {
        antidote_obs::counter_add(
            &format!("fwd.layer{layer_idx:02}.macs"),
            counter.total() - before,
        );
    }
    out
}
