//! The [`Network`] trait implemented by every model in the zoo.

use crate::tap::{FeatureHook, NoopHook, TapInfo};
use crate::ConvShape;
use antidote_nn::layers::Conv2d;
use antidote_nn::masked::MacCounter;
use antidote_nn::{Mode, Parameter};
use antidote_tensor::Tensor;

/// A trainable, hookable, dynamically prunable CNN.
///
/// Three forward flavours:
///
/// - [`Network::forward`]: plain inference/training pass;
/// - [`Network::forward_hooked`]: fires the [`FeatureHook`] at every tap
///   and applies returned masks multiplicatively (Eq. 5) — used for TTD
///   training and for accuracy evaluation under dynamic pruning;
/// - [`Network::forward_measured`]: inference that *skips* masked
///   computation via the masked conv executor and returns measured MACs —
///   used for the FLOPs columns of the experiment tables.
///
/// # Threading model
///
/// Every forward flavour takes `&mut self`: layers cache activations for
/// the backward pass even in inference mode, so a single replica cannot
/// serve two threads at once. Concurrent serving therefore uses
/// **clone-per-worker replication** — each worker thread owns a private
/// replica built from the same seed (see `antidote-serve`'s
/// `ModelFactory`), which keeps replicas bit-identical without sharing
/// mutable state. The trait requires `Send` so replicas can be moved
/// into worker threads, and the concrete models in this crate are also
/// `Sync` (they hold no interior mutability), which the test suite
/// asserts at compile time.
pub trait Network: std::fmt::Debug + Send {
    /// Forward pass with a feature hook at every tap.
    fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FeatureHook,
    ) -> Tensor;

    /// Backward pass; must follow a `forward_hooked(…, Mode::Train, …)`.
    /// Returns the gradient w.r.t. the network input.
    fn backward(&mut self, grad_logits: &Tensor) -> Tensor;

    /// Inference pass that executes convolutions through the masked
    /// executor, skipping pruned channels/columns, and accumulates the
    /// MACs actually performed into `counter`.
    fn forward_measured(
        &mut self,
        input: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
    ) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&mut Parameter));

    /// All taps, in forward order.
    fn taps(&self) -> Vec<TapInfo>;

    /// Visits the convolution layer that *produces* each tapped feature
    /// map, in tap order (`visitor(tap_index, conv)`). Static-pruning
    /// baselines rank filters from these weights and their gradients.
    fn visit_tap_convs(&self, visitor: &mut dyn FnMut(usize, &Conv2d));

    /// Per-conv-layer shapes in forward order (for analytic FLOPs).
    fn conv_shapes(&self) -> Vec<ConvShape>;

    /// Human-readable summary.
    fn describe(&self) -> String;

    /// Plain forward pass (no hook).
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.forward_hooked(input, mode, &mut NoopHook)
    }

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params_mut(&mut |p| n += p.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod thread_safety {
    //! Compile-time audit backing the clone-per-worker threading model:
    //! every model in the zoo must be movable into a worker thread
    //! (`Send`) and shareable behind `&` (`Sync` — no interior
    //! mutability). A regression here (e.g. an `Rc` or `RefCell` slipped
    //! into a layer) fails to compile rather than deadlocking at runtime.

    use crate::{Network, ResNet, ShrunkResNet, ShrunkVgg, Vgg};

    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send + ?Sized>() {}

    #[test]
    fn models_are_send_and_sync() {
        assert_send_sync::<Vgg>();
        assert_send_sync::<ResNet>();
        assert_send_sync::<ShrunkVgg>();
        assert_send_sync::<ShrunkResNet>();
    }

    #[test]
    fn boxed_networks_cross_threads() {
        // The serving engine moves `Box<dyn Network>` replicas into
        // `std::thread` workers; the trait object itself must be `Send`.
        assert_send::<dyn Network>();
        assert_send_sync::<Box<Vgg>>();
    }
}
