//! The [`Network`] trait implemented by every model in the zoo.

use crate::tap::{FeatureHook, NoopHook, TapInfo};
use crate::ConvShape;
use antidote_nn::layers::Conv2d;
use antidote_nn::masked::MacCounter;
use antidote_nn::{Mode, Parameter};
use antidote_tensor::Tensor;

/// A trainable, hookable, dynamically prunable CNN.
///
/// Three forward flavours:
///
/// - [`Network::forward`]: plain inference/training pass;
/// - [`Network::forward_hooked`]: fires the [`FeatureHook`] at every tap
///   and applies returned masks multiplicatively (Eq. 5) — used for TTD
///   training and for accuracy evaluation under dynamic pruning;
/// - [`Network::forward_measured`]: inference that *skips* masked
///   computation via the masked conv executor and returns measured MACs —
///   used for the FLOPs columns of the experiment tables.
pub trait Network: std::fmt::Debug + Send {
    /// Forward pass with a feature hook at every tap.
    fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FeatureHook,
    ) -> Tensor;

    /// Backward pass; must follow a `forward_hooked(…, Mode::Train, …)`.
    /// Returns the gradient w.r.t. the network input.
    fn backward(&mut self, grad_logits: &Tensor) -> Tensor;

    /// Inference pass that executes convolutions through the masked
    /// executor, skipping pruned channels/columns, and accumulates the
    /// MACs actually performed into `counter`.
    fn forward_measured(
        &mut self,
        input: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
    ) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&mut Parameter));

    /// All taps, in forward order.
    fn taps(&self) -> Vec<TapInfo>;

    /// Visits the convolution layer that *produces* each tapped feature
    /// map, in tap order (`visitor(tap_index, conv)`). Static-pruning
    /// baselines rank filters from these weights and their gradients.
    fn visit_tap_convs(&self, visitor: &mut dyn FnMut(usize, &Conv2d));

    /// Per-conv-layer shapes in forward order (for analytic FLOPs).
    fn conv_shapes(&self) -> Vec<ConvShape>;

    /// Human-readable summary.
    fn describe(&self) -> String;

    /// Plain forward pass (no hook).
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.forward_hooked(input, mode, &mut NoopHook)
    }

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params_mut(&mut |p| n += p.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }
}
