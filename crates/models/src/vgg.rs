//! VGG-style sequential CNN with feature taps after every conv.

use crate::config::{ConvShape, VggConfig};
use crate::network::Network;
use crate::profiled::profiled_masked_conv;
use crate::tap::{masks_to_tensor, FeatureHook, TapId, TapInfo};
use antidote_nn::layers::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
use antidote_nn::masked::{FeatureMask, MacCounter};
use antidote_nn::{Layer, Mode, Parameter};
use antidote_tensor::Tensor;
use rand::Rng;

/// One element of the flat VGG op sequence.
#[derive(Debug)]
pub(crate) enum Op {
    Conv(Conv2d),
    Bn(BatchNorm2d),
    Relu(Relu),
    Pool(MaxPool2d),
    Flatten(Flatten),
    Linear(Linear),
    /// A feature tap; caches the applied mask tensor for backward.
    Tap {
        info: TapInfo,
        mask: Option<Tensor>,
    },
}

/// A VGG network instantiated from a [`VggConfig`].
///
/// # Examples
///
/// ```
/// use antidote_models::{Vgg, VggConfig, Network};
/// use antidote_nn::Mode;
/// use antidote_tensor::Tensor;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 4));
/// let logits = net.forward(&Tensor::zeros([2, 3, 8, 8]), Mode::Eval);
/// assert_eq!(logits.dims(), &[2, 4]);
/// ```
#[derive(Debug)]
pub struct Vgg {
    pub(crate) config: VggConfig,
    pub(crate) ops: Vec<Op>,
    pub(crate) taps: Vec<TapInfo>,
    /// Op index of the conv producing each tap, in tap order.
    tap_conv_ops: Vec<usize>,
}

impl Vgg {
    /// Builds a VGG with freshly initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if the input size is not divisible by `2^blocks`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: VggConfig) -> Self {
        assert!(
            config.input_size.is_multiple_of(1 << config.blocks.len()),
            "input size {} not divisible by 2^{} for pooling",
            config.input_size,
            config.blocks.len()
        );
        let mut ops = Vec::new();
        let mut taps = Vec::new();
        let mut tap_conv_ops = Vec::new();
        let mut in_ch = config.input_channels;
        let mut tap_idx = 0;
        for (b, block) in config.blocks.iter().enumerate() {
            let spatial = config.block_spatial(b);
            for _ in 0..block.layers {
                tap_conv_ops.push(ops.len());
                ops.push(Op::Conv(Conv2d::new(rng, in_ch, block.channels, 3, 1, 1)));
                if config.batchnorm {
                    ops.push(Op::Bn(BatchNorm2d::new(block.channels)));
                }
                ops.push(Op::Relu(Relu::new()));
                let info = TapInfo {
                    id: TapId(tap_idx),
                    block: b,
                    channels: block.channels,
                    spatial,
                };
                taps.push(info);
                ops.push(Op::Tap { info, mask: None });
                tap_idx += 1;
                in_ch = block.channels;
            }
            ops.push(Op::Pool(MaxPool2d::new(2)));
        }
        ops.push(Op::Flatten(Flatten::new()));
        ops.push(Op::Linear(Linear::new(
            rng,
            config.classifier_inputs(),
            config.classes,
        )));
        Self {
            config,
            ops,
            taps,
            tap_conv_ops,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Compiles *static* per-tap channel keep-masks into a physically
    /// smaller inference network (filter surgery): masked filters are
    /// removed from their conv, from the following batch norm, from the
    /// next conv's input slices, and from the classifier's input stripes.
    ///
    /// The shrunk network computes exactly what the masked network
    /// computes at inference (masked channels contribute zero either
    /// way), with genuinely fewer parameters and MACs — the deployment
    /// artifact of the static-pruning baselines. Taps absent from
    /// `masks` keep all channels.
    ///
    /// # Panics
    ///
    /// Panics if a mask's length disagrees with its tap's channel count
    /// or a mask prunes *all* channels of a layer.
    pub fn shrink(
        &self,
        masks: &std::collections::BTreeMap<usize, Vec<bool>>,
    ) -> crate::shrunk::ShrunkVgg {
        use crate::shrunk::{shrink_conv_weight, shrink_linear_weight, shrink_vec, ShrunkOp};
        let mut ops = Vec::new();
        let mut in_keep = vec![true; self.config.input_channels];
        let mut out_keep = in_keep.clone();
        let mut conv_idx = 0usize;
        for op in &self.ops {
            match op {
                Op::Conv(conv) => {
                    let full = vec![true; conv.out_channels()];
                    out_keep = masks.get(&conv_idx).cloned().unwrap_or(full);
                    assert_eq!(
                        out_keep.len(),
                        conv.out_channels(),
                        "mask length mismatch at conv {conv_idx}"
                    );
                    let geom = conv.geometry();
                    let w = shrink_conv_weight(&conv.weight().value, &out_keep, &in_keep);
                    let b = shrink_vec(&conv.bias().value, &out_keep);
                    ops.push(ShrunkOp::Conv(Conv2d::from_parts(
                        w,
                        b,
                        geom.stride,
                        geom.padding,
                    )));
                    in_keep = out_keep.clone();
                    conv_idx += 1;
                }
                Op::Bn(bn) => {
                    ops.push(ShrunkOp::Bn(BatchNorm2d::from_parts(
                        shrink_vec(&bn.gamma().value, &out_keep),
                        shrink_vec(&bn.beta().value, &out_keep),
                        shrink_vec(bn.running_mean(), &out_keep),
                        shrink_vec(bn.running_var(), &out_keep),
                    )));
                }
                Op::Relu(_) => ops.push(ShrunkOp::Relu(Relu::new())),
                Op::Pool(p) => ops.push(ShrunkOp::Pool(MaxPool2d::new(p.window()))),
                Op::Flatten(_) => ops.push(ShrunkOp::Flatten(Flatten::new())),
                Op::Linear(fc) => {
                    let spatial = self.config.final_spatial() * self.config.final_spatial();
                    let w = shrink_linear_weight(&fc.weight().value, &in_keep, spatial);
                    ops.push(ShrunkOp::Linear(Linear::from_parts(
                        w,
                        fc.bias().value.clone(),
                    )));
                }
                Op::Tap { .. } => {} // compiled away
            }
        }
        crate::shrunk::ShrunkVgg { ops }
    }
}

/// Downsamples a tap's spatial keep-mask through a `k×k` max pool: a
/// pooled position stays kept if *any* position of its window was kept
/// (all-masked windows pool to exactly 0 on post-ReLU maps, so skipping
/// them is lossless).
pub(crate) fn pool_mask(mask: &FeatureMask, h: usize, w: usize, k: usize) -> FeatureMask {
    let spatial = mask.spatial.as_ref().map(|m| {
        let (ho, wo) = (h / k, w / k);
        let mut out = vec![false; ho * wo];
        for (oy, row) in out.chunks_mut(wo).enumerate() {
            for (ox, slot) in row.iter_mut().enumerate() {
                *slot = (0..k).any(|dy| (0..k).any(|dx| m[(oy * k + dy) * w + (ox * k + dx)]));
            }
        }
        out
    });
    FeatureMask {
        channel: mask.channel.clone(),
        spatial,
    }
}

impl Network for Vgg {
    fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FeatureHook,
    ) -> Tensor {
        let mut x = input.clone();
        for op in &mut self.ops {
            x = match op {
                Op::Conv(l) => l.forward(&x, mode),
                Op::Bn(l) => l.forward(&x, mode),
                Op::Relu(l) => l.forward(&x, mode),
                Op::Pool(l) => l.forward(&x, mode),
                Op::Flatten(l) => l.forward(&x, mode),
                Op::Linear(l) => l.forward(&x, mode),
                Op::Tap { info, mask } => {
                    *mask = None;
                    if let Some(item_masks) = hook.on_feature(*info, &x, mode) {
                        let (n, c, h, w) = x.shape().as_nchw().expect("tap expects NCHW");
                        let m = masks_to_tensor(&item_masks, n, c, h, w);
                        let masked = x.zip(&m, |a, b| a * b);
                        if mode.is_train() {
                            *mask = Some(m);
                        }
                        masked
                    } else {
                        x
                    }
                }
            };
        }
        x
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for op in self.ops.iter_mut().rev() {
            g = match op {
                Op::Conv(l) => l.backward(&g),
                Op::Bn(l) => l.backward(&g),
                Op::Relu(l) => l.backward(&g),
                Op::Pool(l) => l.backward(&g),
                Op::Flatten(l) => l.backward(&g),
                Op::Linear(l) => l.backward(&g),
                Op::Tap { mask, .. } => match mask.take() {
                    Some(m) => g.zip(&m, |a, b| a * b),
                    None => g,
                },
            };
        }
        g
    }

    fn forward_measured(
        &mut self,
        input: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
    ) -> Tensor {
        let mode = Mode::Eval;
        let mut x = input.clone();
        // Masks from the most recent tap, consumed by the next conv.
        let mut pending: Option<Vec<FeatureMask>> = None;
        // Forward-order conv index, matching `conv_shapes()` for
        // per-layer profiling attribution.
        let mut conv_idx = 0usize;
        for op in &mut self.ops {
            x = match op {
                Op::Conv(l) => {
                    let n = x.dims()[0];
                    let masks = pending
                        .take()
                        .unwrap_or_else(|| vec![FeatureMask::keep_all(); n]);
                    let out = profiled_masked_conv(conv_idx, &x, l, &masks, counter);
                    conv_idx += 1;
                    out
                }
                Op::Bn(l) => l.forward(&x, mode),
                Op::Relu(l) => l.forward(&x, mode),
                Op::Pool(l) => {
                    let (_, _, h, w) = x.shape().as_nchw().expect("pool expects NCHW");
                    if let Some(masks) = pending.take() {
                        pending = Some(
                            masks
                                .iter()
                                .map(|m| pool_mask(m, h, w, l.window()))
                                .collect(),
                        );
                    }
                    l.forward(&x, mode)
                }
                Op::Flatten(l) => l.forward(&x, mode),
                Op::Linear(l) => {
                    let _s = antidote_obs::span("fwd.linear");
                    counter.add(l.macs() * x.dims()[0] as u64);
                    l.forward(&x, mode)
                }
                Op::Tap { info, mask } => {
                    *mask = None;
                    if let Some(item_masks) = hook.on_feature(*info, &x, mode) {
                        let (n, c, h, w) = x.shape().as_nchw().expect("tap expects NCHW");
                        let m = masks_to_tensor(&item_masks, n, c, h, w);
                        let masked = x.zip(&m, |a, b| a * b);
                        pending = Some(item_masks);
                        masked
                    } else {
                        pending = None;
                        x
                    }
                }
            };
        }
        x
    }

    fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        for op in &mut self.ops {
            match op {
                Op::Conv(l) => l.visit_params_mut(visitor),
                Op::Bn(l) => l.visit_params_mut(visitor),
                Op::Linear(l) => l.visit_params_mut(visitor),
                _ => {}
            }
        }
    }

    fn taps(&self) -> Vec<TapInfo> {
        self.taps.clone()
    }

    fn visit_tap_convs(&self, visitor: &mut dyn FnMut(usize, &Conv2d)) {
        for (tap_idx, &op_idx) in self.tap_conv_ops.iter().enumerate() {
            if let Op::Conv(conv) = &self.ops[op_idx] {
                visitor(tap_idx, conv);
            }
        }
    }

    fn conv_shapes(&self) -> Vec<ConvShape> {
        self.config.conv_shapes()
    }

    fn describe(&self) -> String {
        format!(
            "vgg(blocks={:?}, input={}x{}, classes={})",
            self.config
                .blocks
                .iter()
                .map(|b| (b.layers, b.channels))
                .collect::<Vec<_>>(),
            self.config.input_size,
            self.config.input_size,
            self.config.classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_nn::loss::softmax_cross_entropy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> Vgg {
        let mut rng = SmallRng::seed_from_u64(1);
        Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3))
    }

    #[test]
    fn forward_shapes() {
        let mut net = tiny();
        let y = net.forward(&Tensor::zeros([2, 3, 8, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(net.taps().len(), 2);
    }

    #[test]
    fn backward_runs_and_fills_grads() {
        let mut net = tiny();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| (i as f32 * 0.013).sin());
        let y = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&y, &[0, 1]);
        let gin = net.backward(&out.grad);
        assert_eq!(gin.dims(), x.dims());
        let mut total_grad = 0.0;
        net.visit_params_mut(&mut |p| total_grad += p.grad.norm_sq());
        assert!(total_grad > 0.0, "gradients should be nonzero");
    }

    #[test]
    fn end_to_end_gradient_check() {
        // Numerical check through the whole network (a few coordinates).
        let mut net = tiny();
        let x = Tensor::from_fn([1, 3, 8, 8], |i| (i as f32 * 0.037).cos() * 0.5);
        let labels = [1usize];
        let y = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&y, &labels);
        net.zero_grad();
        net.backward(&out.grad);

        // collect analytic grads
        let mut grads: Vec<f32> = Vec::new();
        net.visit_params_mut(&mut |p| grads.extend_from_slice(p.grad.data()));

        let eps = 1e-2f32;
        let loss_at = |net: &mut Vgg, x: &Tensor| -> f32 {
            let y = net.forward(x, Mode::Eval);
            softmax_cross_entropy(&y, &labels).loss
        };
        // perturb a few parameters across layers, addressed by their flat
        // index in visit order
        let probe: Vec<usize> = vec![0, 50, 120];
        let mut checked = 0;
        for &target in &probe {
            let mut flat_index;
            // +eps
            flat_index = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat_index && target < flat_index + len {
                    p.value.data_mut()[target - flat_index] += eps;
                }
                flat_index += len;
            });
            let fp = loss_at(&mut net, &x);
            // -2eps
            flat_index = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat_index && target < flat_index + len {
                    p.value.data_mut()[target - flat_index] -= 2.0 * eps;
                }
                flat_index += len;
            });
            let fm = loss_at(&mut net, &x);
            // restore
            flat_index = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat_index && target < flat_index + len {
                    p.value.data_mut()[target - flat_index] += eps;
                }
                flat_index += len;
            });
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads[target];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "grad mismatch at {target}: num={num} ana={ana}"
            );
            checked += 1;
        }
        assert_eq!(checked, probe.len());
    }

    #[test]
    fn hook_masks_are_applied_and_backpropagated() {
        #[derive(Debug)]
        struct KillFirstChannel;
        impl FeatureHook for KillFirstChannel {
            fn on_feature(
                &mut self,
                _tap: TapInfo,
                feature: &Tensor,
                _mode: Mode,
            ) -> Option<Vec<FeatureMask>> {
                let (n, c, _, _) = feature.shape().as_nchw().unwrap();
                let mut ch = vec![true; c];
                ch[0] = false;
                Some(vec![
                    FeatureMask {
                        channel: Some(ch),
                        spatial: None
                    };
                    n
                ])
            }
        }
        let mut net = tiny();
        let x = Tensor::from_fn([1, 3, 8, 8], |i| (i as f32 * 0.05).sin());
        let y_plain = net.forward(&x, Mode::Eval);
        let y_masked = net.forward_hooked(&x, Mode::Eval, &mut KillFirstChannel);
        assert!(!y_plain.allclose(&y_masked, 1e-6), "mask must change logits");

        // Backward must not crash and must respect the mask.
        let y = net.forward_hooked(&x, Mode::Train, &mut KillFirstChannel);
        let out = softmax_cross_entropy(&y, &[0]);
        net.zero_grad();
        let g = net.backward(&out.grad);
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn measured_forward_matches_hooked_forward() {
        #[derive(Debug)]
        struct HalfChannels;
        impl FeatureHook for HalfChannels {
            fn on_feature(
                &mut self,
                _tap: TapInfo,
                feature: &Tensor,
                _mode: Mode,
            ) -> Option<Vec<FeatureMask>> {
                let (n, c, _, _) = feature.shape().as_nchw().unwrap();
                let ch: Vec<bool> = (0..c).map(|i| i % 2 == 0).collect();
                Some(vec![
                    FeatureMask {
                        channel: Some(ch),
                        spatial: None
                    };
                    n
                ])
            }
        }
        let mut net = tiny();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| (i as f32 * 0.021).sin());
        let logits_mult = net.forward_hooked(&x, Mode::Eval, &mut HalfChannels);
        let mut counter = MacCounter::new();
        let logits_meas = net.forward_measured(&x, &mut HalfChannels, &mut counter);
        assert!(
            logits_mult.allclose(&logits_meas, 1e-3),
            "masked executor must be numerically equivalent"
        );
        // And it must do fewer MACs than the dense path.
        let mut dense_counter = MacCounter::new();
        let _ = net.forward_measured(&x, &mut crate::tap::NoopHook, &mut dense_counter);
        assert!(counter.total() < dense_counter.total());
    }

    #[test]
    fn pool_mask_downsamples_any_semantics() {
        let m = FeatureMask {
            channel: Some(vec![true, false]),
            spatial: Some(vec![
                true, false, false, false, // row 0
                false, false, false, false, // row 1
                false, false, false, false, // row 2
                false, false, false, true, // row 3
            ]),
        };
        let p = pool_mask(&m, 4, 4, 2);
        assert_eq!(p.channel, Some(vec![true, false]));
        assert_eq!(p.spatial, Some(vec![true, false, false, true]));
    }

    #[test]
    fn param_count_is_plausible() {
        let mut net = tiny();
        // conv1: 3*4*9+4, conv2: 4*8*9+8, linear: (8*2*2)*3+3
        let expect = (3 * 4 * 9 + 4) + (4 * 8 * 9 + 8) + (8 * 4 * 3 + 3);
        assert_eq!(net.param_count(), expect);
    }
}
