//! Physical filter surgery: turn *static* channel masks into a genuinely
//! smaller network.
//!
//! AntiDote's dynamic masks must stay masks (they change per input), but
//! the static baselines (L1/Taylor/GM/FO) prune the *same* filters for
//! every input — so their masks can be compiled away: masked filters are
//! deleted from the conv weights, the following layer's input slices are
//! deleted too, and batch-norm statistics are carried over. The result
//! computes exactly what the masked network computes, with a genuinely
//! smaller weight footprint and MAC count (the deployment artifact of
//! static pruning).

use antidote_nn::layers::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
use antidote_nn::{Layer, Mode};
use antidote_tensor::Tensor;

/// One op of a shrunk (inference-only) sequential network.
#[derive(Debug)]
pub(crate) enum ShrunkOp {
    /// Convolution (weights already shrunk).
    Conv(Conv2d),
    /// Batch norm (statistics already shrunk).
    Bn(BatchNorm2d),
    /// ReLU.
    Relu(Relu),
    /// Max pool.
    Pool(MaxPool2d),
    /// Flatten.
    Flatten(Flatten),
    /// Classifier head (input features already shrunk).
    Linear(Linear),
}

/// An inference-only network produced by compiling static channel masks
/// into physically smaller layers (see [`crate::Vgg::shrink`]).
///
/// # Examples
///
/// ```
/// use antidote_models::{Vgg, VggConfig, Network};
/// use antidote_nn::Mode;
/// use antidote_tensor::Tensor;
/// use rand::{rngs::SmallRng, SeedableRng};
/// use std::collections::BTreeMap;
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
/// let mut masks = BTreeMap::new();
/// masks.insert(0usize, vec![true, false, true, false]); // prune half of tap 0
/// let mut small = net.shrink(&masks);
/// let y = small.forward(&Tensor::zeros([1, 3, 8, 8]));
/// assert_eq!(y.dims(), &[1, 2]);
/// assert!(small.param_count() < 1000);
/// ```
#[derive(Debug)]
pub struct ShrunkVgg {
    pub(crate) ops: Vec<ShrunkOp>,
}

impl ShrunkVgg {
    /// Inference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the original network's input
    /// shape.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for op in &mut self.ops {
            x = match op {
                ShrunkOp::Conv(l) => l.forward(&x, Mode::Eval),
                ShrunkOp::Bn(l) => l.forward(&x, Mode::Eval),
                ShrunkOp::Relu(l) => l.forward(&x, Mode::Eval),
                ShrunkOp::Pool(l) => l.forward(&x, Mode::Eval),
                ShrunkOp::Flatten(l) => l.forward(&x, Mode::Eval),
                ShrunkOp::Linear(l) => l.forward(&x, Mode::Eval),
            };
        }
        x
    }

    /// Total trainable scalar count of the shrunk network.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        for op in &mut self.ops {
            match op {
                ShrunkOp::Conv(l) => n += l.param_count(),
                ShrunkOp::Bn(l) => n += l.param_count(),
                ShrunkOp::Linear(l) => n += l.param_count(),
                _ => {}
            }
        }
        n
    }

    /// Dense multiply–accumulate count for one image of `(h, w)` input.
    pub fn macs(&self, mut h: usize, mut w: usize) -> u64 {
        let mut total = 0u64;
        for op in &self.ops {
            match op {
                ShrunkOp::Conv(l) => total += l.macs(h, w),
                ShrunkOp::Pool(l) => {
                    h /= l.window();
                    w /= l.window();
                }
                ShrunkOp::Linear(l) => total += l.macs(),
                _ => {}
            }
        }
        total
    }
}

/// Selects `keep`-marked output filters and `in_keep`-marked input slices
/// of a `(Cout, Cin, K, K)` conv weight.
pub(crate) fn shrink_conv_weight(weight: &Tensor, keep: &[bool], in_keep: &[bool]) -> Tensor {
    let d = weight.dims();
    let (cout, cin, k) = (d[0], d[1], d[2]);
    assert_eq!(keep.len(), cout, "output mask length mismatch");
    assert_eq!(in_keep.len(), cin, "input mask length mismatch");
    let new_out = keep.iter().filter(|&&b| b).count();
    let new_in = in_keep.iter().filter(|&&b| b).count();
    assert!(new_out > 0 && new_in > 0, "cannot shrink to zero channels");
    let mut data = Vec::with_capacity(new_out * new_in * k * k);
    for (co, &keep_out) in keep.iter().enumerate() {
        if !keep_out {
            continue;
        }
        for (ci, &keep_in) in in_keep.iter().enumerate() {
            if !keep_in {
                continue;
            }
            let start = ((co * cin) + ci) * k * k;
            data.extend_from_slice(&weight.data()[start..start + k * k]);
        }
    }
    Tensor::from_vec(data, &[new_out, new_in, k, k]).expect("shrunk weight is consistent")
}

/// Selects `keep`-marked entries of a rank-1 tensor.
pub(crate) fn shrink_vec(t: &Tensor, keep: &[bool]) -> Tensor {
    assert_eq!(t.len(), keep.len(), "mask length mismatch");
    let data: Vec<f32> = t
        .data()
        .iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(&v, _)| v)
        .collect();
    assert!(!data.is_empty(), "cannot shrink to zero channels");
    let len = data.len();
    Tensor::from_vec(data, &[len]).expect("shrunk vector is consistent")
}

/// Selects classifier weight columns for kept channels: the flattened
/// feature layout is `(channels, spatial)`, so each kept channel keeps
/// its whole `spatial` stripe.
pub(crate) fn shrink_linear_weight(weight: &Tensor, keep: &[bool], spatial: usize) -> Tensor {
    let (out_features, in_features) = weight
        .shape()
        .as_matrix()
        .expect("classifier weight is rank 2");
    assert_eq!(
        in_features,
        keep.len() * spatial,
        "classifier input features mismatch"
    );
    let new_in = keep.iter().filter(|&&b| b).count() * spatial;
    let mut data = Vec::with_capacity(out_features * new_in);
    for o in 0..out_features {
        let row = &weight.data()[o * in_features..(o + 1) * in_features];
        for (c, &k) in keep.iter().enumerate() {
            if k {
                data.extend_from_slice(&row[c * spatial..(c + 1) * spatial]);
            }
        }
    }
    Tensor::from_vec(data, &[out_features, new_in]).expect("shrunk classifier is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_weight_shrinks_both_dims() {
        let w = Tensor::from_fn([3, 2, 1, 1], |i| i as f32);
        let s = shrink_conv_weight(&w, &[true, false, true], &[false, true]);
        assert_eq!(s.dims(), &[2, 1, 1, 1]);
        // filter 0 in-channel 1 = index 1; filter 2 in-channel 1 = index 5
        assert_eq!(s.data(), &[1.0, 5.0]);
    }

    #[test]
    fn vec_shrinks() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(shrink_vec(&v, &[true, false, true]).data(), &[1.0, 3.0]);
    }

    #[test]
    fn linear_weight_keeps_channel_stripes() {
        // 1 output, 2 channels x 2 spatial = 4 inputs
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let s = shrink_linear_weight(&w, &[false, true], 2);
        assert_eq!(s.dims(), &[1, 2]);
        assert_eq!(s.data(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "zero channels")]
    fn all_pruned_panics() {
        let w = Tensor::zeros([2, 1, 1, 1]);
        shrink_conv_weight(&w, &[false, false], &[true]);
    }
}
