//! CIFAR-style ResNet with skip connections and odd-layer-only pruning
//! taps.
//!
//! The paper (Sec. V-B b) prunes only the *odd* conv layers of each
//! residual group: the skip connection forces even (second) conv outputs
//! to keep their channel count, so taps fire after `conv1`'s activation
//! inside each basic block.

use crate::config::{ConvShape, ResNetConfig};
use crate::network::Network;
use crate::profiled::profiled_masked_conv;
use crate::tap::{masks_to_tensor, FeatureHook, TapId, TapInfo};
use antidote_nn::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
use antidote_nn::masked::{masked_conv2d, FeatureMask, MacCounter};
use antidote_nn::{Layer, Mode, Parameter};
use antidote_tensor::Tensor;
use rand::Rng;

/// One basic residual block: `relu(bn2(conv2(tap(relu(bn1(conv1(x)))))) +
/// shortcut(x))`.
#[derive(Debug)]
struct BasicBlock {
    conv1: Conv2d,
    bn1: Option<BatchNorm2d>,
    relu1: Relu,
    conv2: Conv2d,
    bn2: Option<BatchNorm2d>,
    relu2: Relu,
    /// 1×1 stride-matching projection on the skip path when shapes change.
    projection: Option<(Conv2d, Option<BatchNorm2d>)>,
    tap: TapInfo,
    /// Mask tensor applied at the tap (train mode), for backward.
    tap_mask: Option<Tensor>,
    /// Input cached for the skip path backward.
    skip_cache: Option<Tensor>,
}

impl BasicBlock {
    #[allow(clippy::too_many_arguments)]
    fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        batchnorm: bool,
        tap: TapInfo,
    ) -> Self {
        let projection = (stride != 1 || in_channels != out_channels).then(|| {
            (
                Conv2d::new(rng, in_channels, out_channels, 1, stride, 0),
                batchnorm.then(|| BatchNorm2d::new(out_channels)),
            )
        });
        Self {
            conv1: Conv2d::new(rng, in_channels, out_channels, 3, stride, 1),
            bn1: batchnorm.then(|| BatchNorm2d::new(out_channels)),
            relu1: Relu::new(),
            conv2: Conv2d::new(rng, out_channels, out_channels, 3, 1, 1),
            bn2: batchnorm.then(|| BatchNorm2d::new(out_channels)),
            relu2: Relu::new(),
            projection,
            tap,
            tap_mask: None,
            skip_cache: None,
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode, hook: &mut dyn FeatureHook) -> Tensor {
        if mode.is_train() {
            self.skip_cache = Some(x.clone());
        }
        let mut h = self.conv1.forward(x, mode);
        if let Some(bn) = &mut self.bn1 {
            h = bn.forward(&h, mode);
        }
        h = self.relu1.forward(&h, mode);
        // Tap: the prunable odd-layer feature map.
        self.tap_mask = None;
        if let Some(item_masks) = hook.on_feature(self.tap, &h, mode) {
            let (n, c, hh, ww) = h.shape().as_nchw().expect("tap expects NCHW");
            let m = masks_to_tensor(&item_masks, n, c, hh, ww);
            h = h.zip(&m, |a, b| a * b);
            if mode.is_train() {
                self.tap_mask = Some(m);
            }
        }
        h = self.conv2.forward(&h, mode);
        if let Some(bn) = &mut self.bn2 {
            h = bn.forward(&h, mode);
        }
        let skip = match &mut self.projection {
            Some((conv, bn)) => {
                let mut s = conv.forward(x, mode);
                if let Some(bn) = bn {
                    s = bn.forward(&s, mode);
                }
                s
            }
            None => x.clone(),
        };
        self.relu2.forward(&(&h + &skip), mode)
    }

    /// Measured-MAC inference: conv2 executes through the masked kernel
    /// using the tap's masks; conv1 and the projection run dense (their
    /// inputs are unpruned).
    ///
    /// `layer_base` is conv1's forward-order index in `conv_shapes()`
    /// (conv2 is `layer_base + 1`) for per-layer profiling attribution;
    /// the projection is not in `conv_shapes` and is timed under the
    /// aggregate `fwd.projection` span.
    fn forward_measured(
        &mut self,
        x: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
        layer_base: usize,
    ) -> Tensor {
        let mode = Mode::Eval;
        let n = x.dims()[0];
        let keep_all = vec![FeatureMask::keep_all(); n];
        let mut h = profiled_masked_conv(layer_base, x, &self.conv1, &keep_all, counter);
        if let Some(bn) = &mut self.bn1 {
            h = bn.forward(&h, mode);
        }
        h = self.relu1.forward(&h, mode);
        let masks = match hook.on_feature(self.tap, &h, mode) {
            Some(item_masks) => {
                let (nn, c, hh, ww) = h.shape().as_nchw().expect("tap expects NCHW");
                let m = masks_to_tensor(&item_masks, nn, c, hh, ww);
                h = h.zip(&m, |a, b| a * b);
                item_masks
            }
            None => keep_all.clone(),
        };
        h = profiled_masked_conv(layer_base + 1, &h, &self.conv2, &masks, counter);
        if let Some(bn) = &mut self.bn2 {
            h = bn.forward(&h, mode);
        }
        let skip = match &mut self.projection {
            Some((conv, bn)) => {
                let _span = antidote_obs::span("fwd.projection");
                let mut s = masked_conv2d(
                    x,
                    &conv.weight().value,
                    Some(&conv.bias().value),
                    conv.geometry(),
                    &keep_all,
                    counter,
                );
                if let Some(bn) = bn {
                    s = bn.forward(&s, mode);
                }
                s
            }
            None => x.clone(),
        };
        self.relu2.forward(&(&h + &skip), mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu2.backward(grad_out);
        // Main path.
        let mut gm = g.clone();
        if let Some(bn) = &mut self.bn2 {
            gm = bn.backward(&gm);
        }
        gm = self.conv2.backward(&gm);
        if let Some(m) = self.tap_mask.take() {
            gm = gm.zip(&m, |a, b| a * b);
        }
        gm = self.relu1.backward(&gm);
        if let Some(bn) = &mut self.bn1 {
            gm = bn.backward(&gm);
        }
        gm = self.conv1.backward(&gm);
        // Skip path.
        let gs = match &mut self.projection {
            Some((conv, bn)) => {
                let mut s = g;
                if let Some(bn) = bn {
                    s = bn.backward(&s);
                }
                conv.backward(&s)
            }
            None => g,
        };
        self.skip_cache = None;
        &gm + &gs
    }

    fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.conv1.visit_params_mut(visitor);
        if let Some(bn) = &mut self.bn1 {
            bn.visit_params_mut(visitor);
        }
        self.conv2.visit_params_mut(visitor);
        if let Some(bn) = &mut self.bn2 {
            bn.visit_params_mut(visitor);
        }
        if let Some((conv, bn)) = &mut self.projection {
            conv.visit_params_mut(visitor);
            if let Some(bn) = bn {
                bn.visit_params_mut(visitor);
            }
        }
    }
}

/// A CIFAR-style ResNet instantiated from a [`ResNetConfig`].
///
/// # Examples
///
/// ```
/// use antidote_models::{ResNet, ResNetConfig, Network};
/// use antidote_nn::Mode;
/// use antidote_tensor::Tensor;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut net = ResNet::new(&mut rng, ResNetConfig::resnet_small(16, 4, 4));
/// let logits = net.forward(&Tensor::zeros([2, 3, 16, 16]), Mode::Eval);
/// assert_eq!(logits.dims(), &[2, 4]);
/// ```
#[derive(Debug)]
pub struct ResNet {
    config: ResNetConfig,
    stem_conv: Conv2d,
    stem_bn: Option<BatchNorm2d>,
    stem_relu: Relu,
    blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    head: Linear,
    taps: Vec<TapInfo>,
}

impl ResNet {
    /// Builds a ResNet with freshly initialized weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: ResNetConfig) -> Self {
        let stem_conv = Conv2d::new(rng, config.input_channels, config.group_channels[0], 3, 1, 1);
        let stem_bn = config.batchnorm.then(|| BatchNorm2d::new(config.group_channels[0]));
        let mut blocks = Vec::new();
        let mut taps = Vec::new();
        let mut in_ch = config.group_channels[0];
        let mut tap_idx = 0;
        for g in 0..3 {
            let ch = config.group_channels[g];
            let spatial = config.group_spatial(g);
            for b in 0..config.blocks_per_group {
                let stride = if g > 0 && b == 0 { 2 } else { 1 };
                let tap = TapInfo {
                    id: TapId(tap_idx),
                    block: g,
                    channels: ch,
                    spatial,
                };
                taps.push(tap);
                blocks.push(BasicBlock::new(rng, in_ch, ch, stride, config.batchnorm, tap));
                tap_idx += 1;
                in_ch = ch;
            }
        }
        let head = Linear::new(rng, config.group_channels[2], config.classes);
        Self {
            config,
            stem_conv,
            stem_bn,
            stem_relu: Relu::new(),
            blocks,
            pool: GlobalAvgPool::new(),
            head,
            taps,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Compiles *static* per-tap channel keep-masks into a physically
    /// smaller inference network. Because of the skip connections only
    /// the odd (first) conv of each basic block shrinks its output —
    /// exactly the layers the paper declares prunable (Sec. V-B b): the
    /// masked filters are removed from `conv1`/`bn1` and from `conv2`'s
    /// input slices, while block outputs keep their width.
    ///
    /// # Panics
    ///
    /// Panics if a mask's length disagrees with its tap's channel count
    /// or prunes all channels of a layer.
    pub fn shrink(
        &self,
        masks: &std::collections::BTreeMap<usize, Vec<bool>>,
    ) -> ShrunkResNet {
        use crate::shrunk::{shrink_conv_weight, shrink_vec};
        let blocks = self
            .blocks
            .iter()
            .enumerate()
            .map(|(tap, block)| {
                let cout = block.conv1.out_channels();
                let keep = masks.get(&tap).cloned().unwrap_or_else(|| vec![true; cout]);
                assert_eq!(keep.len(), cout, "mask length mismatch at tap {tap}");
                let all_in = vec![true; block.conv1.in_channels()];
                let all_out = vec![true; block.conv2.out_channels()];
                let g1 = block.conv1.geometry();
                let conv1 = Conv2d::from_parts(
                    shrink_conv_weight(&block.conv1.weight().value, &keep, &all_in),
                    shrink_vec(&block.conv1.bias().value, &keep),
                    g1.stride,
                    g1.padding,
                );
                let bn1 = block.bn1.as_ref().map(|bn| {
                    BatchNorm2d::from_parts(
                        shrink_vec(&bn.gamma().value, &keep),
                        shrink_vec(&bn.beta().value, &keep),
                        shrink_vec(bn.running_mean(), &keep),
                        shrink_vec(bn.running_var(), &keep),
                    )
                });
                let g2 = block.conv2.geometry();
                let conv2 = Conv2d::from_parts(
                    shrink_conv_weight(&block.conv2.weight().value, &all_out, &keep),
                    block.conv2.bias().value.clone(),
                    g2.stride,
                    g2.padding,
                );
                let bn2 = block.bn2.as_ref().map(clone_bn);
                let projection = block.projection.as_ref().map(|(conv, bn)| {
                    let g = conv.geometry();
                    (
                        Conv2d::from_parts(
                            conv.weight().value.clone(),
                            conv.bias().value.clone(),
                            g.stride,
                            g.padding,
                        ),
                        bn.as_ref().map(clone_bn),
                    )
                });
                ShrunkBasicBlock {
                    conv1,
                    bn1,
                    conv2,
                    bn2,
                    projection,
                }
            })
            .collect();
        let stem_geom = self.stem_conv.geometry();
        ShrunkResNet {
            stem_conv: Conv2d::from_parts(
                self.stem_conv.weight().value.clone(),
                self.stem_conv.bias().value.clone(),
                stem_geom.stride,
                stem_geom.padding,
            ),
            stem_bn: self.stem_bn.as_ref().map(clone_bn),
            blocks,
            head: Linear::from_parts(
                self.head.weight().value.clone(),
                self.head.bias().value.clone(),
            ),
            input_size: self.config.input_size,
        }
    }
}

/// Clones a batch-norm layer's inference state (weights + running stats).
fn clone_bn(bn: &BatchNorm2d) -> BatchNorm2d {
    BatchNorm2d::from_parts(
        bn.gamma().value.clone(),
        bn.beta().value.clone(),
        bn.running_mean().clone(),
        bn.running_var().clone(),
    )
}

/// A basic block after filter surgery (inference-only).
#[derive(Debug)]
struct ShrunkBasicBlock {
    conv1: Conv2d,
    bn1: Option<BatchNorm2d>,
    conv2: Conv2d,
    bn2: Option<BatchNorm2d>,
    projection: Option<(Conv2d, Option<BatchNorm2d>)>,
}

/// An inference-only ResNet produced by [`ResNet::shrink`].
#[derive(Debug)]
pub struct ShrunkResNet {
    stem_conv: Conv2d,
    stem_bn: Option<BatchNorm2d>,
    blocks: Vec<ShrunkBasicBlock>,
    head: Linear,
    input_size: usize,
}

impl ShrunkResNet {
    /// Inference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the original network's input
    /// shape.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mode = Mode::Eval;
        let mut relu = Relu::new();
        let mut x = self.stem_conv.forward(input, mode);
        if let Some(bn) = &mut self.stem_bn {
            x = bn.forward(&x, mode);
        }
        x = relu.forward(&x, mode);
        for block in &mut self.blocks {
            let mut h = block.conv1.forward(&x, mode);
            if let Some(bn) = &mut block.bn1 {
                h = bn.forward(&h, mode);
            }
            h = relu.forward(&h, mode);
            h = block.conv2.forward(&h, mode);
            if let Some(bn) = &mut block.bn2 {
                h = bn.forward(&h, mode);
            }
            let skip = match &mut block.projection {
                Some((conv, bn)) => {
                    let mut s = conv.forward(&x, mode);
                    if let Some(bn) = bn {
                        s = bn.forward(&s, mode);
                    }
                    s
                }
                None => x.clone(),
            };
            x = relu.forward(&(&h + &skip), mode);
        }
        let mut pool = GlobalAvgPool::new();
        let x = pool.forward(&x, mode);
        self.head.forward(&x, mode)
    }

    /// Dense multiply–accumulate count for one image at the network's
    /// native input size.
    pub fn macs(&self) -> u64 {
        let mut total = 0u64;
        let mut hw = self.input_size;
        total += self.stem_conv.macs(hw, hw);
        for block in &self.blocks {
            if block.conv1.geometry().stride == 2 {
                hw /= 2;
            }
            // conv1 output spatial == conv2 spatial == hw after stride.
            let in_hw = hw * block.conv1.geometry().stride;
            total += block.conv1.macs(in_hw, in_hw);
            total += block.conv2.macs(hw, hw);
            if let Some((conv, _)) = &block.projection {
                total += conv.macs(in_hw, in_hw);
            }
        }
        total += self.head.macs();
        total
    }

    /// Total parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = self.stem_conv.param_count() + self.head.param_count();
        if let Some(bn) = &mut self.stem_bn {
            n += bn.param_count();
        }
        for block in &mut self.blocks {
            n += block.conv1.param_count() + block.conv2.param_count();
            if let Some(bn) = &mut block.bn1 {
                n += bn.param_count();
            }
            if let Some(bn) = &mut block.bn2 {
                n += bn.param_count();
            }
            if let Some((conv, bn)) = &mut block.projection {
                n += conv.param_count();
                if let Some(bn) = bn {
                    n += bn.param_count();
                }
            }
        }
        n
    }
}

impl Network for ResNet {
    fn forward_hooked(
        &mut self,
        input: &Tensor,
        mode: Mode,
        hook: &mut dyn FeatureHook,
    ) -> Tensor {
        let mut x = self.stem_conv.forward(input, mode);
        if let Some(bn) = &mut self.stem_bn {
            x = bn.forward(&x, mode);
        }
        x = self.stem_relu.forward(&x, mode);
        for block in &mut self.blocks {
            x = block.forward(&x, mode, hook);
        }
        let x = self.pool.forward(&x, mode);
        self.head.forward(&x, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.head.backward(grad_logits);
        let mut g = self.pool.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        g = self.stem_relu.backward(&g);
        if let Some(bn) = &mut self.stem_bn {
            g = bn.backward(&g);
        }
        self.stem_conv.backward(&g)
    }

    fn forward_measured(
        &mut self,
        input: &Tensor,
        hook: &mut dyn FeatureHook,
        counter: &mut MacCounter,
    ) -> Tensor {
        let mode = Mode::Eval;
        let n = input.dims()[0];
        let keep_all = vec![FeatureMask::keep_all(); n];
        // Stem conv is conv_shapes() layer 0; block i's convs are
        // layers 1 + 2i and 2 + 2i.
        let mut x = profiled_masked_conv(0, input, &self.stem_conv, &keep_all, counter);
        if let Some(bn) = &mut self.stem_bn {
            x = bn.forward(&x, mode);
        }
        x = self.stem_relu.forward(&x, mode);
        for (bi, block) in self.blocks.iter_mut().enumerate() {
            x = block.forward_measured(&x, hook, counter, 1 + 2 * bi);
        }
        let x = self.pool.forward(&x, mode);
        let _s = antidote_obs::span("fwd.linear");
        counter.add(self.head.macs() * n as u64);
        self.head.forward(&x, mode)
    }

    fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.stem_conv.visit_params_mut(visitor);
        if let Some(bn) = &mut self.stem_bn {
            bn.visit_params_mut(visitor);
        }
        for block in &mut self.blocks {
            block.visit_params_mut(visitor);
        }
        self.head.visit_params_mut(visitor);
    }

    fn taps(&self) -> Vec<TapInfo> {
        self.taps.clone()
    }

    fn visit_tap_convs(&self, visitor: &mut dyn FnMut(usize, &Conv2d)) {
        for (tap_idx, block) in self.blocks.iter().enumerate() {
            visitor(tap_idx, &block.conv1);
        }
    }

    fn conv_shapes(&self) -> Vec<ConvShape> {
        self.config.conv_shapes()
    }

    fn describe(&self) -> String {
        format!(
            "resnet(blocks_per_group={}, channels={:?}, input={}x{}, classes={})",
            self.config.blocks_per_group,
            self.config.group_channels,
            self.config.input_size,
            self.config.input_size,
            self.config.classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antidote_nn::loss::softmax_cross_entropy;
    use crate::tap::NoopHook;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> ResNet {
        let mut rng = SmallRng::seed_from_u64(3);
        ResNet::new(&mut rng, ResNetConfig::resnet_small(8, 3, 4))
    }

    #[test]
    fn forward_shapes() {
        let mut net = tiny();
        let y = net.forward(&Tensor::zeros([2, 3, 8, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(net.taps().len(), 3); // one per basic block
    }

    #[test]
    fn backward_runs_and_fills_grads() {
        let mut net = tiny();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| (i as f32 * 0.017).sin());
        let y = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&y, &[0, 2]);
        let gin = net.backward(&out.grad);
        assert_eq!(gin.dims(), x.dims());
        let mut total = 0.0;
        net.visit_params_mut(&mut |p| total += p.grad.norm_sq());
        assert!(total > 0.0);
    }

    #[test]
    fn end_to_end_gradient_check() {
        // Perturb a couple of stem-conv weights; BN makes tolerances
        // looser but the directional agreement must hold.
        let mut net = tiny();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| (i as f32 * 0.029).cos() * 0.5);
        let labels = [1usize, 0];
        let y = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&y, &labels);
        net.zero_grad();
        net.backward(&out.grad);
        let mut grads = Vec::new();
        net.visit_params_mut(&mut |p| grads.extend_from_slice(p.grad.data()));

        let eps = 1e-2f32;
        // Loss must be evaluated in Train mode so BN uses batch stats
        // (matching what backward differentiated), but running stats drift
        // identically for both sides of the central difference.
        let loss_at = |net: &mut ResNet, x: &Tensor| -> f32 {
            let y = net.forward(x, Mode::Train);
            softmax_cross_entropy(&y, &labels).loss
        };
        for &target in &[0usize, 30, 80] {
            let mut flat;
            flat = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat && target < flat + len {
                    p.value.data_mut()[target - flat] += eps;
                }
                flat += len;
            });
            let fp = loss_at(&mut net, &x);
            flat = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat && target < flat + len {
                    p.value.data_mut()[target - flat] -= 2.0 * eps;
                }
                flat += len;
            });
            let fm = loss_at(&mut net, &x);
            flat = 0;
            net.visit_params_mut(&mut |p| {
                let len = p.len();
                if target >= flat && target < flat + len {
                    p.value.data_mut()[target - flat] += eps;
                }
                flat += len;
            });
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads[target];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "grad mismatch at {target}: num={num} ana={ana}"
            );
        }
    }

    #[test]
    fn skip_connection_is_live() {
        // Zero out all main-path conv2 weights: output should still vary
        // with the input thanks to the skip path.
        let mut net = tiny();
        for block in &mut net.blocks {
            block.conv2.weight_mut().value.data_mut().fill(0.0);
        }
        let a = net.forward(&Tensor::full([1, 3, 8, 8], 0.5), Mode::Eval);
        let b = net.forward(&Tensor::full([1, 3, 8, 8], -0.5), Mode::Eval);
        assert!(!a.allclose(&b, 1e-6), "skip path must carry signal");
    }

    #[test]
    fn measured_forward_matches_hooked_forward() {
        #[derive(Debug)]
        struct HalfChannels;
        impl FeatureHook for HalfChannels {
            fn on_feature(
                &mut self,
                _tap: TapInfo,
                feature: &Tensor,
                _mode: Mode,
            ) -> Option<Vec<FeatureMask>> {
                let (n, c, _, _) = feature.shape().as_nchw().unwrap();
                let ch: Vec<bool> = (0..c).map(|i| i % 2 == 0).collect();
                Some(vec![
                    FeatureMask {
                        channel: Some(ch),
                        spatial: None
                    };
                    n
                ])
            }
        }
        let mut net = tiny();
        let x = Tensor::from_fn([2, 3, 8, 8], |i| (i as f32 * 0.023).sin());
        let logits_mult = net.forward_hooked(&x, Mode::Eval, &mut HalfChannels);
        let mut counter = MacCounter::new();
        let logits_meas = net.forward_measured(&x, &mut HalfChannels, &mut counter);
        assert!(logits_mult.allclose(&logits_meas, 1e-3));
        let mut dense = MacCounter::new();
        let _ = net.forward_measured(&x, &mut NoopHook, &mut dense);
        assert!(counter.total() < dense.total());
    }

    #[test]
    fn downsampling_projection_exists_only_at_group_entries() {
        let net = tiny();
        assert!(net.blocks[0].projection.is_none());
        assert!(net.blocks[1].projection.is_some());
        assert!(net.blocks[2].projection.is_some());
    }

    #[test]
    fn tap_channels_match_group_channels() {
        let net = tiny();
        let taps = net.taps();
        assert_eq!(taps[0].channels, 4);
        assert_eq!(taps[1].channels, 8);
        assert_eq!(taps[2].channels, 16);
        assert_eq!(taps[1].spatial, 4);
    }
}
