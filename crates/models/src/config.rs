//! Architecture descriptors for the model zoo.
//!
//! Configs are pure data: the analytic FLOPs model in `antidote-core`
//! consumes them directly (at the paper's full scale), while
//! [`crate::Vgg`]/[`crate::ResNet`] instantiate trainable networks from
//! them (usually at reduced width for CPU training).

use serde::{Deserialize, Serialize};

/// One VGG convolutional block: `layers` convs of `channels` filters
/// followed by a 2×2 max pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VggBlock {
    /// Number of 3×3 conv layers in the block.
    pub layers: usize,
    /// Filters per conv layer.
    pub channels: usize,
}

/// A VGG-style architecture: conv blocks with 2×2 max pools, then a
/// flatten + linear classifier head.
///
/// # Examples
///
/// ```
/// use antidote_models::VggConfig;
///
/// let cfg = VggConfig::vgg16(32, 10);
/// assert_eq!(cfg.conv_layer_count(), 13);
/// assert_eq!(cfg.blocks.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VggConfig {
    /// Convolutional blocks, in order.
    pub blocks: Vec<VggBlock>,
    /// Input image channels.
    pub input_channels: usize,
    /// Input image side length (square inputs).
    pub input_size: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Whether to insert batch norm after each conv.
    pub batchnorm: bool,
}

impl VggConfig {
    /// The paper's VGG16: 13 conv layers in 5 blocks of 2-2-3-3-3 layers
    /// with 64-128-256-512-512 filters (Sec. V-B a).
    pub fn vgg16(input_size: usize, classes: usize) -> Self {
        Self {
            blocks: vec![
                VggBlock { layers: 2, channels: 64 },
                VggBlock { layers: 2, channels: 128 },
                VggBlock { layers: 3, channels: 256 },
                VggBlock { layers: 3, channels: 512 },
                VggBlock { layers: 3, channels: 512 },
            ],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: false,
        }
    }

    /// Width- and depth-reduced VGG with the same 5-block topology, for
    /// CPU-scale training. `width` is the block-1 filter count (paper: 64).
    pub fn vgg_small(input_size: usize, classes: usize, width: usize) -> Self {
        Self {
            blocks: vec![
                VggBlock { layers: 1, channels: width },
                VggBlock { layers: 1, channels: width * 2 },
                VggBlock { layers: 2, channels: width * 4 },
                VggBlock { layers: 2, channels: width * 8 },
                VggBlock { layers: 2, channels: width * 8 },
            ],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: false,
        }
    }

    /// A 2-block VGG for unit tests.
    pub fn vgg_tiny(input_size: usize, classes: usize) -> Self {
        Self {
            blocks: vec![
                VggBlock { layers: 1, channels: 4 },
                VggBlock { layers: 1, channels: 8 },
            ],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: false,
        }
    }

    /// Enables batch normalization after every conv.
    pub fn with_batchnorm(mut self) -> Self {
        self.batchnorm = true;
        self
    }

    /// Checks the structural invariants [`crate::Vgg::new`] asserts
    /// (non-empty blocks, positive widths, pooling divisibility) as a
    /// `Result` — the entry point for configs decoded from untrusted
    /// files, where a panic is not acceptable.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("config has no conv blocks".into());
        }
        if self.blocks.len() > 16 {
            return Err(format!("{} conv blocks (max 16)", self.blocks.len()));
        }
        if self.blocks.iter().any(|b| b.layers == 0 || b.channels == 0) {
            return Err("every block needs at least one layer and one channel".into());
        }
        if self.input_channels == 0 || self.classes == 0 {
            return Err("input channels and classes must be positive".into());
        }
        if self.input_size == 0 || !self.input_size.is_multiple_of(1 << self.blocks.len()) {
            return Err(format!(
                "input size {} not divisible by 2^{} for pooling",
                self.input_size,
                self.blocks.len()
            ));
        }
        Ok(())
    }

    /// Total number of conv layers.
    pub fn conv_layer_count(&self) -> usize {
        self.blocks.iter().map(|b| b.layers).sum()
    }

    /// Spatial side length of the feature map *inside* block `b`
    /// (pooling halves it after each block).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_spatial(&self, b: usize) -> usize {
        assert!(b < self.blocks.len(), "block index out of range");
        self.input_size >> b
    }

    /// Spatial side after the final pool (classifier input).
    pub fn final_spatial(&self) -> usize {
        self.input_size >> self.blocks.len()
    }

    /// Flattened classifier input feature count.
    pub fn classifier_inputs(&self) -> usize {
        let last = self.blocks.last().expect("at least one block");
        last.channels * self.final_spatial() * self.final_spatial()
    }

    /// Per-conv-layer shapes `(block, in_ch, out_ch, feature_h/w)` in
    /// forward order — the input to the analytic FLOPs model.
    pub fn conv_shapes(&self) -> Vec<ConvShape> {
        let mut shapes = Vec::new();
        let mut in_ch = self.input_channels;
        for (b, block) in self.blocks.iter().enumerate() {
            let spatial = self.block_spatial(b);
            for l in 0..block.layers {
                shapes.push(ConvShape {
                    block: b,
                    layer_in_block: l,
                    in_channels: in_ch,
                    out_channels: block.channels,
                    kernel: 3,
                    spatial,
                    prunable_output: true,
                });
                in_ch = block.channels;
            }
        }
        shapes
    }
}

/// A CIFAR-style ResNet: a 3×3 stem, three groups of basic blocks where
/// each group `g` has `channels[g]` filters, stride-2 downsampling at the
/// first block of groups 1 and 2, global average pooling, and a linear
/// head. ResNet56 has 9 blocks per group (6·9 + 2 = 56 layers).
///
/// # Examples
///
/// ```
/// use antidote_models::ResNetConfig;
///
/// let cfg = ResNetConfig::resnet56(32, 10);
/// assert_eq!(cfg.total_conv_layers(), 55); // stem + 54 block convs
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Basic blocks per group (ResNet56: 9, ResNet20: 3).
    pub blocks_per_group: usize,
    /// Filter counts of the three groups.
    pub group_channels: [usize; 3],
    /// Input image channels.
    pub input_channels: usize,
    /// Input image side length.
    pub input_size: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Whether to insert batch norm after each conv (recommended).
    pub batchnorm: bool,
}

impl ResNetConfig {
    /// The paper's ResNet56 on 32×32 inputs (16-32-64 filters,
    /// 9 blocks/group).
    pub fn resnet56(input_size: usize, classes: usize) -> Self {
        Self {
            blocks_per_group: 9,
            group_channels: [16, 32, 64],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: true,
        }
    }

    /// ResNet20 (3 blocks per group) — the standard smaller sibling.
    pub fn resnet20(input_size: usize, classes: usize) -> Self {
        Self {
            blocks_per_group: 3,
            group_channels: [16, 32, 64],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: true,
        }
    }

    /// ResNet8 (1 block per group) with narrow groups for CPU training.
    pub fn resnet_small(input_size: usize, classes: usize, width: usize) -> Self {
        Self {
            blocks_per_group: 1,
            group_channels: [width, width * 2, width * 4],
            input_channels: 3,
            input_size,
            classes,
            batchnorm: true,
        }
    }

    /// Total conv layers (stem + 2 per basic block).
    pub fn total_conv_layers(&self) -> usize {
        1 + 6 * self.blocks_per_group
    }

    /// Feature-map side length inside group `g` (stride-2 entry halves at
    /// groups 1 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `g >= 3`.
    pub fn group_spatial(&self, g: usize) -> usize {
        assert!(g < 3, "group index out of range");
        self.input_size >> g
    }

    /// Per-conv-layer shapes in forward order (stem first, then each
    /// block's conv1/conv2). Only conv1 outputs (odd layers) are marked
    /// prunable, because the skip connection fixes conv2's output shape
    /// (Sec. V-B b).
    pub fn conv_shapes(&self) -> Vec<ConvShape> {
        let mut shapes = Vec::new();
        shapes.push(ConvShape {
            block: 0,
            layer_in_block: 0,
            in_channels: self.input_channels,
            out_channels: self.group_channels[0],
            kernel: 3,
            spatial: self.input_size,
            prunable_output: false,
        });
        let mut in_ch = self.group_channels[0];
        for g in 0..3 {
            let ch = self.group_channels[g];
            let spatial = self.group_spatial(g);
            for _b in 0..self.blocks_per_group {
                // conv1 (odd layer in the paper's numbering): prunable
                shapes.push(ConvShape {
                    block: g,
                    layer_in_block: 0,
                    in_channels: in_ch,
                    out_channels: ch,
                    kernel: 3,
                    spatial,
                    prunable_output: true,
                });
                // conv2 (even layer): output must match the skip, not prunable
                shapes.push(ConvShape {
                    block: g,
                    layer_in_block: 1,
                    in_channels: ch,
                    out_channels: ch,
                    kernel: 3,
                    spatial,
                    prunable_output: false,
                });
                in_ch = ch;
            }
        }
        shapes
    }
}

/// Shape summary of one conv layer, consumed by the analytic FLOPs model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Block (VGG) or group (ResNet) index.
    pub block: usize,
    /// Layer index within the block.
    pub layer_in_block: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Output feature-map side length (stride-1, pad-1 convs preserve it).
    pub spatial: usize,
    /// Whether the paper's method may prune this layer's *output* feature
    /// map (false for ResNet even layers due to skip connections).
    pub prunable_output: bool,
}

impl ConvShape {
    /// Dense multiply–accumulate count of this layer (the paper's FLOPs
    /// unit: `K²·Cin·Cout·H·W`).
    pub fn macs(&self) -> u64 {
        (self.kernel * self.kernel * self.in_channels * self.out_channels) as u64
            * (self.spatial * self.spatial) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_paper_structure() {
        let cfg = VggConfig::vgg16(32, 10);
        assert_eq!(cfg.conv_layer_count(), 13);
        let ch: Vec<usize> = cfg.blocks.iter().map(|b| b.channels).collect();
        assert_eq!(ch, vec![64, 128, 256, 512, 512]);
        let layers: Vec<usize> = cfg.blocks.iter().map(|b| b.layers).collect();
        assert_eq!(layers, vec![2, 2, 3, 3, 3]);
    }

    #[test]
    fn vgg16_cifar_flops_match_table1_baseline() {
        // Table I reports 3.13E+08 baseline FLOPs for VGG16/CIFAR10.
        let cfg = VggConfig::vgg16(32, 10);
        let total: u64 = cfg.conv_shapes().iter().map(ConvShape::macs).sum();
        assert!(
            (total as f64 - 3.13e8).abs() / 3.13e8 < 0.01,
            "VGG16 CIFAR MACs = {total}, expected ≈3.13e8"
        );
    }

    #[test]
    fn resnet56_flops_match_table1_baseline() {
        // Table I reports 1.28E+08 baseline FLOPs for ResNet56/CIFAR10.
        let cfg = ResNetConfig::resnet56(32, 10);
        let total: u64 = cfg.conv_shapes().iter().map(ConvShape::macs).sum();
        assert!(
            (total as f64 - 1.28e8).abs() / 1.28e8 < 0.02,
            "ResNet56 CIFAR MACs = {total}, expected ≈1.28e8"
        );
    }

    #[test]
    fn vgg16_imagenet_flops_match_table1_baseline() {
        // Table I reports 1.52E+10 baseline FLOPs for VGG16/ImageNet (224²).
        let cfg = VggConfig::vgg16(224, 100);
        let total: u64 = cfg.conv_shapes().iter().map(ConvShape::macs).sum();
        assert!(
            (total as f64 - 1.52e10).abs() / 1.52e10 < 0.02,
            "VGG16 ImageNet MACs = {total}, expected ≈1.52e10"
        );
    }

    #[test]
    fn validate_accepts_stock_configs_and_rejects_broken_ones() {
        assert!(VggConfig::vgg16(32, 10).validate().is_ok());
        assert!(VggConfig::vgg_tiny(8, 3).validate().is_ok());
        let mut cfg = VggConfig::vgg_tiny(8, 3);
        cfg.blocks.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = VggConfig::vgg_tiny(8, 3);
        cfg.input_size = 7; // not divisible by 2^2
        assert!(cfg.validate().is_err());
        let mut cfg = VggConfig::vgg_tiny(8, 3);
        cfg.input_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = VggConfig::vgg_tiny(8, 3);
        cfg.blocks[0].channels = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = VggConfig::vgg_tiny(8, 3);
        cfg.classes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn vgg_spatial_halves_per_block() {
        let cfg = VggConfig::vgg16(32, 10);
        assert_eq!(cfg.block_spatial(0), 32);
        assert_eq!(cfg.block_spatial(4), 2);
        assert_eq!(cfg.final_spatial(), 1);
        assert_eq!(cfg.classifier_inputs(), 512);
    }

    #[test]
    fn resnet_odd_layers_only_prunable() {
        let cfg = ResNetConfig::resnet20(32, 10);
        let shapes = cfg.conv_shapes();
        assert_eq!(shapes.len(), cfg.total_conv_layers());
        // Stem not prunable; alternating prunable inside blocks.
        assert!(!shapes[0].prunable_output);
        let prunable = shapes.iter().filter(|s| s.prunable_output).count();
        assert_eq!(prunable, 3 * cfg.blocks_per_group);
    }

    #[test]
    fn resnet56_has_55_convs() {
        assert_eq!(ResNetConfig::resnet56(32, 10).total_conv_layers(), 55);
        assert_eq!(ResNetConfig::resnet20(32, 10).total_conv_layers(), 19);
    }

    #[test]
    fn conv_shape_macs() {
        let s = ConvShape {
            block: 0,
            layer_in_block: 0,
            in_channels: 64,
            out_channels: 64,
            kernel: 3,
            spatial: 32,
            prunable_output: true,
        };
        assert_eq!(s.macs(), 37_748_736);
    }

    #[test]
    fn small_configs_scale_down() {
        let v = VggConfig::vgg_small(16, 10, 8);
        assert_eq!(v.blocks[4].channels, 64);
        let r = ResNetConfig::resnet_small(16, 10, 4);
        assert_eq!(r.total_conv_layers(), 7);
    }
}
