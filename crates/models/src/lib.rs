//! # antidote-models
//!
//! The model zoo of the AntiDote (DATE 2020) reproduction: VGG and
//! CIFAR-style ResNet with *feature taps* — hook points after every
//! prunable convolution where the paper's attention machinery observes
//! the feature map and returns dynamic pruning masks.
//!
//! Architecture descriptors ([`VggConfig`], [`ResNetConfig`]) are pure
//! data and reproduce the paper's exact full-scale layer shapes (the
//! Table I baseline FLOPs fall out of [`ConvShape::macs`] sums); the
//! trainable [`Vgg`]/[`ResNet`] networks are usually instantiated at
//! reduced width for CPU-scale training.
//!
//! # Example
//!
//! ```
//! use antidote_models::{Vgg, VggConfig, Network};
//! use antidote_nn::Mode;
//! use antidote_tensor::Tensor;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 4));
//! let logits = net.forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Eval);
//! assert_eq!(logits.dims(), &[1, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod network;
mod profiled;
mod quantized;
mod resnet;
pub mod shrunk;
mod tap;
mod vgg;

pub use config::{ConvShape, ResNetConfig, VggBlock, VggConfig};
pub use network::Network;
pub use quantized::{BnParts, QuantizedConvParts, QuantizedVgg, QuantizedVggParts};
pub use resnet::{ResNet, ShrunkResNet};
pub use shrunk::ShrunkVgg;
pub use tap::{masks_to_tensor, FeatureHook, NoopHook, TapId, TapInfo};
pub use vgg::Vgg;
