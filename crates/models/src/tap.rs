//! Feature-map taps: the hook points where AntiDote observes and masks
//! activations.
//!
//! The paper inserts its attention → mask machinery "between any two
//! consecutive convolutional layers" (Fig. 1). Models in this crate fire
//! a [`FeatureHook`] right after each prunable conv's activation; the
//! hook may answer with per-input [`FeatureMask`]s which the model then
//! applies multiplicatively (Eq. 5) and respects during backprop.

use antidote_nn::masked::FeatureMask;
use antidote_nn::Mode;
use antidote_tensor::Tensor;

/// Identifies one tap (one prunable feature map) within a network, in
/// forward order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TapId(pub usize);

/// Static description of a tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TapInfo {
    /// The tap's identifier (index in forward order).
    pub id: TapId,
    /// Block (VGG) / group (ResNet) this tap's conv belongs to.
    pub block: usize,
    /// Channel count of the tapped feature map.
    pub channels: usize,
    /// Spatial side length of the tapped feature map (at the model's own
    /// input scale).
    pub spatial: usize,
}

/// Observer/mutator of tapped feature maps.
///
/// Returning `None` leaves the feature map untouched; returning masks
/// (one [`FeatureMask`] per batch item) prunes it. Implementations:
/// `antidote_core::DynamicPruner` (testing phase) and the TTD targeted
/// dropout (training phase).
pub trait FeatureHook {
    /// Called once per tap per forward pass with the post-activation
    /// feature map `(N, C, H, W)`.
    fn on_feature(&mut self, tap: TapInfo, feature: &Tensor, mode: Mode)
        -> Option<Vec<FeatureMask>>;
}

/// A hook that never masks — plain forward passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl FeatureHook for NoopHook {
    fn on_feature(
        &mut self,
        _tap: TapInfo,
        _feature: &Tensor,
        _mode: Mode,
    ) -> Option<Vec<FeatureMask>> {
        None
    }
}

/// Builds the dense `(N, C, H, W)` multiplicative mask tensor from
/// per-item masks, broadcasting channel masks over positions and spatial
/// masks over channels (Eq. 5).
///
/// # Panics
///
/// Panics if `masks.len() != n` or mask lengths disagree with `c`/`h·w`.
pub fn masks_to_tensor(masks: &[FeatureMask], n: usize, c: usize, h: usize, w: usize) -> Tensor {
    assert_eq!(masks.len(), n, "one mask per batch item required");
    let plane = h * w;
    let mut m = Tensor::ones([n, c, h, w]);
    let data = m.data_mut();
    for (ni, mask) in masks.iter().enumerate() {
        let item = &mut data[ni * c * plane..(ni + 1) * c * plane];
        mask.apply_to_item(c, h, w, item);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hook_returns_none() {
        let mut hook = NoopHook;
        let t = Tensor::zeros([1, 2, 2, 2]);
        let info = TapInfo {
            id: TapId(0),
            block: 0,
            channels: 2,
            spatial: 2,
        };
        assert!(hook.on_feature(info, &t, Mode::Eval).is_none());
    }

    #[test]
    fn masks_to_tensor_broadcasts() {
        let mask = FeatureMask {
            channel: Some(vec![true, false]),
            spatial: Some(vec![true, false, true, true]),
        };
        let m = masks_to_tensor(&[mask], 1, 2, 2, 2);
        // channel 0: spatial mask only
        assert_eq!(&m.data()[0..4], &[1.0, 0.0, 1.0, 1.0]);
        // channel 1: fully masked
        assert_eq!(&m.data()[4..8], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn keep_all_mask_is_ones() {
        let m = masks_to_tensor(&[FeatureMask::keep_all()], 1, 3, 2, 2);
        assert!(m.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn per_item_masks_are_independent() {
        let m0 = FeatureMask {
            channel: Some(vec![false]),
            spatial: None,
        };
        let m1 = FeatureMask::keep_all();
        let m = masks_to_tensor(&[m0, m1], 2, 1, 1, 2);
        assert_eq!(m.data(), &[0.0, 0.0, 1.0, 1.0]);
    }
}
