//! # antidote-par
//!
//! A std-only persistent worker pool providing **scoped intra-op
//! parallelism** for the compute kernels of the workspace (GEMM, im2col
//! batch loops, the masked-convolution executor). Like every other crate
//! here it builds offline with no external dependencies — there is no
//! rayon, just `std::thread` + `Mutex`/`Condvar`.
//!
//! ## Model
//!
//! The pool executes batches of *scoped tasks*: [`run_scoped`] takes a
//! vector of `FnOnce` closures that may borrow from the caller's stack
//! (e.g. disjoint `chunks_mut` of an output buffer), runs them on the
//! pool plus the calling thread, and **returns only when every task has
//! finished** — which is what makes the borrow sound. [`parallel_for`]
//! is a convenience wrapper for shared-read index-range loops.
//!
//! ## Determinism
//!
//! The pool never changes *what* a task computes, only *where* it runs.
//! Callers keep results bit-exact across thread counts by making each
//! task own a disjoint output region whose contents depend only on the
//! task's index range (see `antidote_tensor::linalg` for the GEMM
//! row-block argument). `ANTIDOTE_THREADS=1` is an exact sequential
//! fallback: tasks run inline on the caller, in order, with no pool
//! machinery at all.
//!
//! ## Configuration
//!
//! - `ANTIDOTE_THREADS` (parsed through [`antidote_obs::env`], warn-and-
//!   ignore on malformed values): intra-op thread budget. Defaults to
//!   [`std::thread::available_parallelism`]; `1` disables the pool.
//! - [`set_threads`] overrides the budget at runtime (benchmarks and the
//!   thread-parity property tests toggle it mid-process).
//!
//! ## Observability
//!
//! With `antidote_obs` enabled the pool maintains gauges
//! `par.pool.threads` (current budget), `par.pool.busy` (tasks executing
//! right now) and `par.pool.queue_depth`, and times each fan-out under
//! the `par.run_scoped` span. Disabled, the only cost is one relaxed
//! atomic load per fan-out.
//!
//! ## Nesting
//!
//! A task that itself calls [`run_scoped`] or [`parallel_for`] runs the
//! nested batch **inline** (sequentially on the executing thread). This
//! keeps the pool deadlock-free by construction — no pool thread ever
//! blocks waiting for another task — and matches how intra-op pools are
//! used here: batch-level parallelism in `Conv2d::forward` outranks
//! GEMM-row parallelism, and a single-item batch falls through to
//! GEMM-row parallelism because single-task batches never enter the
//! pool.
//!
//! # Examples
//!
//! ```
//! let mut out = vec![0u64; 1024];
//! let tasks: Vec<Box<dyn FnOnce() + Send>> = out
//!     .chunks_mut(256)
//!     .enumerate()
//!     .map(|(i, chunk)| {
//!         let f: Box<dyn FnOnce() + Send> = Box::new(move || {
//!             for (j, slot) in chunk.iter_mut().enumerate() {
//!                 *slot = (i * 256 + j) as u64;
//!             }
//!         });
//!         f
//!     })
//!     .collect();
//! antidote_par::run_scoped(tasks);
//! assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased task once its scope lifetime has been certified by
/// [`run_scoped`] (which blocks until completion, keeping borrows live).
type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Completion state shared between one [`run_scoped`] call and the pool.
struct JobGroup {
    /// Tasks not yet finished (queued or executing).
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// Set if any task panicked; the submitting call re-panics.
    panicked: AtomicBool,
}

/// State shared by every worker and submitting thread.
struct Shared {
    queue: Mutex<VecDeque<(StaticTask, Arc<JobGroup>)>>,
    work: Condvar,
    busy: AtomicUsize,
}

struct Pool {
    shared: Arc<Shared>,
    /// Workers spawned so far (grow-only; workers never exit).
    spawned: Mutex<usize>,
}

/// Current thread budget; 0 means "not yet initialized from the
/// environment".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool workers and on any thread currently executing a pool
    /// task; nested fan-outs from such threads run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            busy: AtomicUsize::new(0),
        }),
        spawned: Mutex::new(0),
    })
}

/// Recovers a poisoned lock: a panicking task must not take the pool
/// down with it (panics are re-raised on the submitting thread instead).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of hardware threads visible to the process (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The current intra-op thread budget.
///
/// First call resolves it: `ANTIDOTE_THREADS` if set and positive
/// (malformed values warn and are ignored, via [`antidote_obs::env`]),
/// otherwise [`available`]. Always ≥ 1.
pub fn current_threads() -> usize {
    let t = THREADS.load(Ordering::Acquire);
    if t != 0 {
        return t;
    }
    let resolved = antidote_obs::env::positive::<usize>("ANTIDOTE_THREADS")
        .unwrap_or_else(available)
        .max(1);
    // Racing first calls resolve the same environment; either store wins.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::AcqRel, Ordering::Acquire);
    let t = THREADS.load(Ordering::Acquire);
    ensure_workers(t);
    t
}

/// Overrides the intra-op thread budget at runtime (clamped to ≥ 1).
///
/// Growing the budget spawns workers as needed; shrinking it leaves the
/// extra workers idle (they cost nothing while the queue is empty).
/// `set_threads(1)` restores the exact sequential fallback.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    THREADS.store(n, Ordering::Release);
    ensure_workers(n);
    if antidote_obs::enabled() {
        antidote_obs::gauge_set("par.pool.threads", n as f64);
    }
}

/// Spawns workers until `target_threads - 1` exist (the submitting
/// thread is the final executor).
fn ensure_workers(target_threads: usize) {
    let want = target_threads.saturating_sub(1);
    let p = pool();
    let mut spawned = lock(&p.spawned);
    while *spawned < want {
        let shared = Arc::clone(&p.shared);
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("antidote-par-{id}"))
            .spawn(move || worker_loop(&shared))
            .expect("antidote-par: failed to spawn worker thread");
        *spawned += 1;
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.work.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_task(shared, job);
    }
}

/// Executes one queued task, maintaining the busy gauge, the panic flag,
/// and the group's completion count.
fn run_task(shared: &Shared, (task, group): (StaticTask, Arc<JobGroup>)) {
    let was_in_pool = IN_POOL.with(|f| f.replace(true));
    let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
    if antidote_obs::enabled() {
        antidote_obs::gauge_set("par.pool.busy", busy as f64);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    let busy = shared.busy.fetch_sub(1, Ordering::Relaxed) - 1;
    if antidote_obs::enabled() {
        antidote_obs::gauge_set("par.pool.busy", busy as f64);
    }
    IN_POOL.with(|f| f.set(was_in_pool));
    if result.is_err() {
        group.panicked.store(true, Ordering::Relaxed);
    }
    let mut pending = lock(&group.pending);
    *pending -= 1;
    if *pending == 0 {
        group.done.notify_all();
    }
}

/// Runs every task to completion, using the pool plus the calling
/// thread, then returns.
///
/// Tasks may borrow from the caller's stack (the call blocks until all
/// of them finish, so the borrows outlive every execution). Disjoint
/// mutable access is expressed safely on the caller side with
/// `split_at_mut`/`chunks_mut`.
///
/// Runs **inline, in order, on the caller** — the exact sequential
/// fallback — when any of these hold: the budget
/// ([`current_threads`]) is 1, there is at most one task, or the caller
/// is itself a pool task (see the crate docs on nesting).
///
/// # Panics
///
/// If a task panics, the panic is captured and re-raised here (after all
/// tasks of the batch have settled), so a crashing kernel fails the
/// caller rather than poisoning a detached worker.
///
/// # Examples
///
/// ```
/// let mut halves = vec![0u32; 8];
/// let (lo, hi) = halves.split_at_mut(4);
/// antidote_par::run_scoped(vec![
///     Box::new(|| lo.fill(1)),
///     Box::new(|| hi.fill(2)),
/// ]);
/// assert_eq!(halves, [1, 1, 1, 1, 2, 2, 2, 2]);
/// ```
pub fn run_scoped(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || IN_POOL.with(Cell::get) || current_threads() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let _span = antidote_obs::span("par.run_scoped");
    let group = Arc::new(JobGroup {
        pending: Mutex::new(tasks.len()),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let shared = &pool().shared;
    {
        let mut q = lock(&shared.queue);
        for task in tasks {
            // SAFETY: this function does not return until `pending`
            // reaches zero, i.e. until every queued task has run to
            // completion (or panicked, which also decrements `pending`).
            // Every borrow captured by the tasks therefore strictly
            // outlives every use on the worker threads, so erasing the
            // scope lifetime to 'static for the queue's benefit is sound.
            let task: StaticTask = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, StaticTask>(task)
            };
            q.push_back((task, Arc::clone(&group)));
        }
        if antidote_obs::enabled() {
            antidote_obs::gauge_set("par.pool.queue_depth", q.len() as f64);
        }
    }
    shared.work.notify_all();
    // The caller participates: drain the queue (its own tasks and any
    // other in-flight batch's) until empty, then wait for stragglers.
    loop {
        let job = lock(&shared.queue).pop_front();
        match job {
            Some(job) => run_task(shared, job),
            None => break,
        }
    }
    let mut pending = lock(&group.pending);
    while *pending > 0 {
        pending = group.done.wait(pending).unwrap_or_else(|e| e.into_inner());
    }
    drop(pending);
    if group.panicked.load(Ordering::Relaxed) {
        panic!("antidote-par: a parallel task panicked (see worker backtrace above)");
    }
}

/// Splits `0..n` into contiguous ranges and runs `body` over them in
/// parallel, blocking until all complete.
///
/// Chunk sizes are a multiple of `align` (callers whose per-index work
/// depends on block grouping — the 4-row GEMM microkernels — pass their
/// group size so blocks land identically for every thread count; pass 1
/// when indices are fully independent). With a budget of 1 this is
/// exactly `body(0..n)`.
pub fn parallel_for<F: Fn(Range<usize>) + Sync>(n: usize, align: usize, body: F) {
    if n == 0 {
        return;
    }
    let align = align.max(1);
    let threads = if IN_POOL.with(Cell::get) { 1 } else { current_threads() };
    let chunk = n.div_ceil(threads).next_multiple_of(align);
    if threads <= 1 || chunk >= n {
        body(0..n);
        return;
    }
    let body = &body;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n.div_ceil(chunk))
        .map(|i| {
            let start = i * chunk;
            let end = (start + chunk).min(n);
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || body(start..end));
            f
        })
        .collect();
    run_scoped(tasks);
}

/// Deterministically partitions `n` items into at most `max_parts`
/// contiguous ranges whose boundaries depend **only on `n` and
/// `max_parts`** — never on the thread budget.
///
/// Used where per-part partial results are reduced in part order (conv
/// weight gradients): a thread-count-independent partition keeps the
/// floating-point reduction tree, and therefore the result bits,
/// identical from `ANTIDOTE_THREADS=1` to any other budget.
pub fn fixed_ranges(n: usize, max_parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = max_parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts; // first `extra` parts get one more item
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-global thread budget.
    fn budget_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn run_scoped_fills_disjoint_chunks() {
        let _guard = budget_lock();
        set_threads(4);
        let mut out = vec![0usize; 1000];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(123)
            .enumerate()
            .map(|(i, chunk)| {
                let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 123 + j;
                    }
                });
                f
            })
            .collect();
        run_scoped(tasks);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let _guard = budget_lock();
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..997).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), 4, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_budget_runs_inline_in_order() {
        let _guard = budget_lock();
        set_threads(1);
        let log = Mutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let log = &log;
                let f: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || log.lock().unwrap().push(i));
                f
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
        set_threads(4);
    }

    #[test]
    fn nested_fan_out_is_inline_and_complete() {
        let _guard = budget_lock();
        set_threads(4);
        let outer: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(outer.len(), 1, |range| {
            for i in range {
                // Nested call: must run inline without deadlock.
                parallel_for(3, 1, |inner| {
                    for _ in inner {
                        outer[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(outer.iter().all(|h| h.load(Ordering::Relaxed) == 3));
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let _guard = budget_lock();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                    });
                    f
                })
                .collect();
            run_scoped(tasks);
        });
        assert!(result.is_err(), "panic inside a task must reach the caller");
    }

    #[test]
    fn fixed_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 8, 9, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 100] {
                let ranges = fixed_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty parts");
                    next = r.end;
                }
                assert_eq!(next, n, "covers 0..{n}");
                assert!(ranges.len() <= parts.max(1));
                if n > 0 {
                    assert!(ranges.len() == parts.min(n));
                }
            }
        }
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _guard = budget_lock();
        set_threads(0);
        assert_eq!(current_threads(), 1);
        set_threads(4);
        assert_eq!(current_threads(), 4);
    }
}
