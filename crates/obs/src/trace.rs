//! Trace ids and the thread-local span/counter collector behind
//! per-request flight recording.
//!
//! A [`TraceId`] is a 128-bit identifier minted once per request (or
//! accepted from an inbound `x-antidote-trace` header) and threaded
//! through the serving stack so a request's queue wait, shed decision,
//! batch, and per-layer spans can be stitched back together after the
//! fact. Ids render as 32 lowercase hex characters.
//!
//! The **collector** captures the spans and counters a thread produces
//! while executing one batch: a worker calls [`collect_begin`], runs the
//! forward pass (whose [`crate::span`] guards and [`crate::counter_add`]
//! calls are mirrored into the thread-local collector), then
//! [`collect_end`] to take the captured [`Collected`] set for the
//! request records it hands to the flight recorder
//! ([`crate::record_trace`]). Collection is strictly opt-in per thread;
//! when no collector is active the only added cost on the span/counter
//! paths is one thread-local `Option` check, and the disabled-path
//! guarantee (one relaxed atomic load, no clock read) is untouched
//! because span guards are inert when observability is off.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A 128-bit request trace id (never zero), rendered as 32 hex chars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u128);

/// SplitMix64 finalizer — cheap, well-mixed, and std-only (the obs
/// crate takes no `rand` dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-process random-ish seed pair so ids from concurrent processes
/// (e.g. a bench client and its server) do not collide.
fn process_seed() -> (u64, u64) {
    static SEED: OnceLock<(u64, u64)> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        (splitmix64(nanos ^ pid), splitmix64(nanos.rotate_left(32) ^ pid.wrapping_mul(0x9e37)))
    })
}

impl TraceId {
    /// Mints a fresh process-unique id.
    pub fn mint() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let (s1, s2) = process_seed();
        let hi = splitmix64(s1 ^ n);
        let lo = splitmix64(s2 ^ splitmix64(n));
        let id = ((hi as u128) << 64) | lo as u128;
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Parses an inbound id: 1–32 hex characters, non-zero. Anything
    /// else returns `None` (callers mint a fresh id instead).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        match u128::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }

    /// The canonical 32-hex-char rendering (what the `x-antidote-trace`
    /// response header and trace records carry).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for TraceId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraceId::parse(s).ok_or_else(|| format!("invalid trace id `{s}` (want 1-32 hex chars)"))
    }
}

/// One span captured by the collector, in nanoseconds relative to
/// [`collect_begin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectedSpan {
    /// Span name (e.g. `fwd.layer03`).
    pub name: String,
    /// Start offset from collection begin, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Everything one thread produced between [`collect_begin`] and
/// [`collect_end`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Collected {
    /// Completed spans in completion order.
    pub spans: Vec<CollectedSpan>,
    /// Per-name counter deltas (e.g. per-layer MAC counts).
    pub counters: Vec<(String, u64)>,
    /// Spans/counters discarded past the collector caps.
    pub dropped: u64,
}

/// Collector caps: a runaway span storm must stay bounded.
const COLLECT_SPAN_CAP: usize = 512;
const COLLECT_COUNTER_CAP: usize = 256;

struct ActiveCollector {
    t0: Instant,
    out: Collected,
}

thread_local! {
    static COLLECTOR: RefCell<Option<ActiveCollector>> = const { RefCell::new(None) };
}

/// Starts capturing this thread's spans and counters. Nested begins
/// restart the capture (the previous partial set is discarded).
pub fn collect_begin() {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(ActiveCollector {
            t0: Instant::now(),
            out: Collected::default(),
        });
    });
}

/// Stops capturing and returns what was collected since
/// [`collect_begin`], or `None` if no collection was active.
pub fn collect_end() -> Option<Collected> {
    COLLECTOR.with(|c| c.borrow_mut().take().map(|a| a.out))
}

/// `true` while this thread has an active collector.
pub fn collecting() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Mirrors a completed span into the active collector, if any. Called
/// from the span guard's drop (which only fires when enabled).
pub(crate) fn collect_span(name: &str, start: Instant, dur_ns: u64) {
    COLLECTOR.with(|c| {
        if let Some(a) = c.borrow_mut().as_mut() {
            if a.out.spans.len() >= COLLECT_SPAN_CAP {
                a.out.dropped += 1;
                return;
            }
            let start_ns = u64::try_from(
                start.saturating_duration_since(a.t0).as_nanos(),
            )
            .unwrap_or(u64::MAX);
            a.out.spans.push(CollectedSpan {
                name: name.to_string(),
                start_ns,
                dur_ns,
            });
        }
    });
}

/// Mirrors a counter increment into the active collector, if any.
pub(crate) fn collect_counter(name: &str, delta: u64) {
    COLLECTOR.with(|c| {
        if let Some(a) = c.borrow_mut().as_mut() {
            if let Some(slot) = a.out.counters.iter_mut().find(|(n, _)| n == name) {
                slot.1 += delta;
                return;
            }
            if a.out.counters.len() >= COLLECT_COUNTER_CAP {
                a.out.dropped += 1;
                return;
            }
            a.out.counters.push((name.to_string(), delta));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{counter_add, reset, set_enabled, span};

    #[test]
    fn trace_ids_are_unique_and_round_trip() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(TraceId::parse(&hex), Some(a));
        assert_eq!(hex.parse::<TraceId>().ok(), Some(a));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "zz", "0", "00000000000000000000000000000000", &"f".repeat(33)] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?} must not parse");
        }
        // Short hex is accepted (left-padded semantics).
        assert_eq!(TraceId::parse("ff").unwrap().to_hex(), format!("{:032x}", 0xffu32));
    }

    #[test]
    fn collector_captures_spans_and_counters() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        collect_begin();
        {
            let _s = span("t.collect.span");
        }
        counter_add("t.collect.macs", 7);
        counter_add("t.collect.macs", 3);
        let got = collect_end().expect("collector active");
        set_enabled(false);
        assert_eq!(got.spans.len(), 1);
        assert_eq!(got.spans[0].name, "t.collect.span");
        assert_eq!(got.counters, vec![("t.collect.macs".to_string(), 10)]);
        assert_eq!(got.dropped, 0);
        // Ended: nothing further is captured.
        assert!(!collecting());
        reset();
    }

    #[test]
    fn collector_is_per_thread() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        collect_begin();
        std::thread::spawn(|| {
            counter_add("t.collect.other_thread", 1);
        })
        .join()
        .unwrap();
        let got = collect_end().unwrap();
        set_enabled(false);
        assert!(got.counters.is_empty(), "other thread's counters must not leak in");
        reset();
    }

    #[test]
    fn collector_caps_are_enforced() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        collect_begin();
        for i in 0..(COLLECT_COUNTER_CAP + 5) {
            counter_add(&format!("t.cap.{i}"), 1);
        }
        let got = collect_end().unwrap();
        set_enabled(false);
        assert_eq!(got.counters.len(), COLLECT_COUNTER_CAP);
        assert_eq!(got.dropped, 5);
        reset();
    }
}
