//! Bounded JSONL event log: in-memory ring buffer, optional file sink
//! (`ANTIDOTE_TRACE`), and a level-gated stderr console sink.

use crate::json;
use crate::metrics::lock;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The ring retains at most this many recent event lines.
const RING_CAP: usize = 4096;

/// Event severity. The console sink prints events at or above its
/// threshold (default [`Level::Warn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics.
    Debug = 0,
    /// Progress telemetry (epochs, checkpoints, ascent steps).
    Info = 1,
    /// Something was ignored or recovered from.
    Warn = 2,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite renders as JSON `null`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl Value<'_> {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => format!("{v}"),
            Value::I64(v) => format!("{v}"),
            Value::F64(v) => json::number(*v),
            Value::Str(s) => format!("\"{}\"", json::escape(s)),
            Value::Bool(b) => format!("{b}"),
        }
    }
}

#[derive(Debug, Default)]
struct EventLog {
    ring: VecDeque<String>,
    dropped: u64,
    file: Option<File>,
}

fn event_log() -> &'static Mutex<EventLog> {
    static LOG: OnceLock<Mutex<EventLog>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(EventLog::default()))
}

/// The process observability epoch: first use wins, and every
/// monotonic timestamp in the crate (event `ts_ms`/`mono_ns`, window
/// ticks, trace-record capture times) is relative to it.
pub(crate) fn start_instant() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

/// Console threshold as a `Level` discriminant; 3 means off.
static CONSOLE_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Sets the console (stderr) sink threshold; `None` silences it
/// entirely (the `--quiet` behaviour, also reachable via
/// `ANTIDOTE_LOG=off`).
pub fn set_console_level(level: Option<Level>) {
    CONSOLE_LEVEL.store(level.map_or(3, |l| l as u8), Ordering::Relaxed);
}

/// Mirrors future events to a JSONL file (append mode). Returns `false`
/// — after emitting a warning event — if the file cannot be opened
/// (warn-and-ignore, consistent with the `ANTIDOTE_*` knob convention).
pub fn set_trace_path(path: &str) -> bool {
    match OpenOptions::new().create(true).append(true).open(path) {
        Ok(f) => {
            lock(event_log()).file = Some(f);
            TRACE_ACTIVE.store(true, Ordering::Relaxed);
            true
        }
        Err(e) => {
            warn_ignored_env("ANTIDOTE_TRACE", path, &format!("cannot open: {e}"));
            false
        }
    }
}

/// Records a structured event.
///
/// The line always lands in the bounded in-memory ring (and the trace
/// file when one is set); it is echoed to stderr when `level` clears
/// the console threshold. Rendered shape:
/// `{"ts_ms":…,"unix_ms":…,"mono_ns":…,"level":"…","kind":"…",<fields>}`
/// — `ts_ms`/`mono_ns` are monotonic (ms/ns since process start, safe
/// for ordering across the ring even when the wall clock steps),
/// `unix_ms` is the wall clock for cross-host correlation.
pub fn event(level: Level, kind: &str, fields: &[(&str, Value<'_>)]) {
    let elapsed = start_instant().elapsed();
    let ts_ms = elapsed.as_millis() as u64;
    let mono_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_ms\":{ts_ms},\"unix_ms\":{unix_ms},\"mono_ns\":{mono_ns},\"level\":\"{}\",\"kind\":\"{}\"",
        level.as_str(),
        json::escape(kind)
    );
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":{}", json::escape(k), v.render()));
    }
    line.push('}');
    {
        let mut log = lock(event_log());
        if log.ring.len() == RING_CAP {
            log.ring.pop_front();
            log.dropped += 1;
        }
        log.ring.push_back(line.clone());
        if let Some(f) = log.file.as_mut() {
            // A failing sink must never take the workload down; drop the
            // line and keep going.
            let _ = writeln!(f, "{line}");
        }
    }
    if level as u8 >= CONSOLE_LEVEL.load(Ordering::Relaxed) {
        eprintln!("{line}");
    }
}

/// [`event`] at [`Level::Debug`].
pub fn debug(kind: &str, fields: &[(&str, Value<'_>)]) {
    event(Level::Debug, kind, fields);
}

/// [`event`] at [`Level::Info`].
pub fn info(kind: &str, fields: &[(&str, Value<'_>)]) {
    event(Level::Info, kind, fields);
}

/// [`event`] at [`Level::Warn`].
pub fn warn_event(kind: &str, fields: &[(&str, Value<'_>)]) {
    event(Level::Warn, kind, fields);
}

/// The `env.ignored` warning every `ANTIDOTE_*` knob emits on bad input.
pub(crate) fn warn_ignored_env(key: &str, raw: &str, reason: &str) {
    warn_event(
        "env.ignored",
        &[
            ("key", Value::Str(key)),
            ("value", Value::Str(raw)),
            ("reason", Value::Str(reason)),
        ],
    );
}

/// Removes and returns every buffered event line (oldest first).
pub fn drain_events() -> Vec<String> {
    lock(event_log()).ring.drain(..).collect()
}

/// Events evicted from the ring since startup (the bounded-buffer
/// overflow count).
pub fn events_dropped() -> u64 {
    lock(event_log()).dropped
}

pub(crate) fn clear_ring() {
    let mut log = lock(event_log());
    log.ring.clear();
    log.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn events_render_as_jsonl_and_drain() {
        let _guard = test_lock::hold();
        clear_ring();
        info(
            "t.event",
            &[
                ("epoch", Value::U64(3)),
                ("loss", Value::F64(1.5)),
                ("note", Value::Str("a\"b")),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-2)),
            ],
        );
        let lines = drain_events();
        let line = lines.iter().find(|l| l.contains("t.event")).expect("event buffered");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"epoch\":3"));
        assert!(line.contains("\"loss\":1.5"));
        assert!(line.contains("\"note\":\"a\\\"b\""));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"delta\":-2"));
        assert!(drain_events().is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = test_lock::hold();
        clear_ring();
        for i in 0..(RING_CAP + 5) {
            debug("t.flood", &[("i", Value::U64(i as u64))]);
        }
        let lines = drain_events();
        assert_eq!(lines.len(), RING_CAP);
        assert_eq!(events_dropped(), 5);
        // Oldest events were evicted.
        assert!(lines[0].contains("\"i\":5"));
        clear_ring();
    }

    #[test]
    fn events_carry_monotonic_and_wall_clock_timestamps() {
        let _guard = test_lock::hold();
        clear_ring();
        info("t.mono", &[("i", Value::U64(0))]);
        info("t.mono", &[("i", Value::U64(1))]);
        let lines = drain_events();
        let mono: Vec<u64> = lines
            .iter()
            .filter(|l| l.contains("t.mono"))
            .map(|l| {
                let tail = l.split("\"mono_ns\":").nth(1).expect("mono_ns field");
                tail.split(',').next().unwrap().parse().unwrap()
            })
            .collect();
        assert_eq!(mono.len(), 2);
        // Monotonic: later events never order before earlier ones even
        // if the wall clock steps.
        assert!(mono[0] <= mono[1], "{mono:?}");
        assert!(lines.iter().all(|l| !l.contains("t.mono") || l.contains("\"unix_ms\":")));
        clear_ring();
    }

    #[test]
    fn non_finite_field_values_render_null() {
        let _guard = test_lock::hold();
        clear_ring();
        info("t.nan", &[("v", Value::F64(f64::NAN))]);
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("\"v\":null")));
    }

    #[test]
    fn trace_file_sink_appends_jsonl() {
        let _guard = test_lock::hold();
        clear_ring();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("antidote-obs-test-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        assert!(set_trace_path(&path_str));
        info("t.sink", &[("x", Value::U64(1))]);
        // Detach the sink before reading.
        lock(event_log()).file = None;
        TRACE_ACTIVE.store(false, Ordering::Relaxed);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.lines().any(|l| l.contains("\"kind\":\"t.sink\"")));
        let _ = std::fs::remove_file(&path);
        clear_ring();
    }

    #[test]
    fn bad_trace_path_warns_and_ignores() {
        let _guard = test_lock::hold();
        clear_ring();
        assert!(!set_trace_path("/nonexistent-dir-for-sure/trace.jsonl"));
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("env.ignored")));
        clear_ring();
    }
}
