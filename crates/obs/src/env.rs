//! Centralized warn-and-ignore parsing for `ANTIDOTE_*` environment
//! knobs.
//!
//! Every knob in the workspace follows the same contract: unset means
//! "use the default", a well-formed value overrides it, and a malformed
//! value is **ignored with a warning** (an `env.ignored` event through
//! the console sink) — a typo must never crash a long training run or a
//! serving process. This module is the single implementation of that
//! contract; callers in `antidote-serve`/`antidote-bench` use it instead
//! of hand-rolled `parse`/`eprintln!` blocks.

use crate::event::warn_ignored_env;
use std::str::FromStr;

/// Parses `key` with `T::from_str`. Unset returns `None`; a malformed
/// value warns and returns `None`.
pub fn parse<T: FromStr>(key: &str) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_ignored_env(key, &raw, "unparseable");
            None
        }
    }
}

/// Like [`parse`], falling back to `default` when unset or malformed.
pub fn parse_or<T: FromStr>(key: &str, default: T) -> T {
    parse(key).unwrap_or(default)
}

/// Parses `key` as a value that must be strictly greater than zero
/// (worker counts, batch sizes, millisecond windows, backoff factors).
/// Non-positive or malformed values warn and return `None`.
pub fn positive<T>(key: &str) -> Option<T>
where
    T: FromStr + PartialOrd + Default,
{
    let raw = std::env::var(key).ok()?;
    match raw.parse::<T>() {
        Ok(v) if v > T::default() => Some(v),
        _ => {
            warn_ignored_env(key, &raw, "must be positive");
            None
        }
    }
}

/// Emits the standard `env.ignored` warning for a knob a caller
/// rejected with validation of its own (e.g. a finiteness check on top
/// of [`positive`]), keeping the warning shape uniform.
pub fn warn_ignored(key: &str, raw: &str, reason: &str) {
    warn_ignored_env(key, raw, reason);
}

/// Parses `key` as a boolean flag: `1`/`true`/`on`/`yes` and
/// `0`/`false`/`off`/`no` (case-insensitive). Anything else warns and
/// returns `None`.
pub fn flag(key: &str) -> Option<bool> {
    let raw = std::env::var(key).ok()?;
    match raw.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            warn_ignored_env(key, &raw, "must be a boolean (1/0/true/false/on/off)");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{drain_events, reset};

    // Tests mutate process-global env vars; each uses a distinct key and
    // holds the registry lock so event assertions do not interleave.

    #[test]
    fn unset_is_none_without_warning() {
        let _guard = test_lock::hold();
        reset();
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_UNSET"), None);
        assert!(drain_events().iter().all(|l| !l.contains("ANTIDOTE_TEST_UNSET")));
    }

    #[test]
    fn well_formed_values_parse() {
        let _guard = test_lock::hold();
        std::env::set_var("ANTIDOTE_TEST_OK", "42");
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_OK"), Some(42));
        assert_eq!(parse_or("ANTIDOTE_TEST_OK", 7u64), 42);
        assert_eq!(positive::<u64>("ANTIDOTE_TEST_OK"), Some(42));
        std::env::remove_var("ANTIDOTE_TEST_OK");
    }

    #[test]
    fn malformed_values_warn_and_fall_back() {
        let _guard = test_lock::hold();
        reset();
        std::env::set_var("ANTIDOTE_TEST_BAD", "not-a-number");
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_BAD"), None);
        assert_eq!(parse_or("ANTIDOTE_TEST_BAD", 9u64), 9);
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("env.ignored") && l.contains("ANTIDOTE_TEST_BAD")));
        std::env::remove_var("ANTIDOTE_TEST_BAD");
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        let _guard = test_lock::hold();
        reset();
        std::env::set_var("ANTIDOTE_TEST_ZERO", "0");
        assert_eq!(positive::<u64>("ANTIDOTE_TEST_ZERO"), None);
        std::env::set_var("ANTIDOTE_TEST_NEG", "-1.5");
        assert_eq!(positive::<f64>("ANTIDOTE_TEST_NEG"), None);
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("ANTIDOTE_TEST_ZERO")));
        assert!(lines.iter().any(|l| l.contains("ANTIDOTE_TEST_NEG")));
        std::env::remove_var("ANTIDOTE_TEST_ZERO");
        std::env::remove_var("ANTIDOTE_TEST_NEG");
    }

    #[test]
    fn flags_accept_common_spellings() {
        let _guard = test_lock::hold();
        reset();
        for (raw, want) in [("1", true), ("TRUE", true), ("on", true), ("0", false), ("off", false)] {
            std::env::set_var("ANTIDOTE_TEST_FLAG", raw);
            assert_eq!(flag("ANTIDOTE_TEST_FLAG"), Some(want), "raw={raw}");
        }
        std::env::set_var("ANTIDOTE_TEST_FLAG", "maybe");
        assert_eq!(flag("ANTIDOTE_TEST_FLAG"), None);
        std::env::remove_var("ANTIDOTE_TEST_FLAG");
        assert!(drain_events().iter().any(|l| l.contains("must be a boolean")));
    }
}
