//! Centralized warn-and-ignore parsing for `ANTIDOTE_*` environment
//! knobs.
//!
//! Every knob in the workspace follows the same contract: unset means
//! "use the default", a well-formed value overrides it, and a malformed
//! value is **ignored with a warning** (an `env.ignored` event through
//! the console sink) — a typo must never crash a long training run or a
//! serving process. This module is the single implementation of that
//! contract; callers in `antidote-serve`/`antidote-bench` use it instead
//! of hand-rolled `parse`/`eprintln!` blocks.

use crate::event::warn_ignored_env;
use std::str::FromStr;

/// Parses `key` with `T::from_str`. Unset returns `None`; a malformed
/// value warns and returns `None`.
pub fn parse<T: FromStr>(key: &str) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_ignored_env(key, &raw, "unparseable");
            None
        }
    }
}

/// Like [`parse`], falling back to `default` when unset or malformed.
pub fn parse_or<T: FromStr>(key: &str, default: T) -> T {
    parse(key).unwrap_or(default)
}

/// Parses `key` as a value that must be strictly greater than zero
/// (worker counts, batch sizes, millisecond windows, backoff factors).
/// Non-positive or malformed values warn and return `None`.
pub fn positive<T>(key: &str) -> Option<T>
where
    T: FromStr + PartialOrd + Default,
{
    let raw = std::env::var(key).ok()?;
    match raw.parse::<T>() {
        Ok(v) if v > T::default() => Some(v),
        _ => {
            warn_ignored_env(key, &raw, "must be positive");
            None
        }
    }
}

/// Emits the standard `env.ignored` warning for a knob a caller
/// rejected with validation of its own (e.g. a finiteness check on top
/// of [`positive`]), keeping the warning shape uniform.
pub fn warn_ignored(key: &str, raw: &str, reason: &str) {
    warn_ignored_env(key, raw, reason);
}

/// Every `ANTIDOTE_*` knob the workspace reads, in one place.
///
/// [`warn_unknown`] checks the process environment against this list so
/// a typo'd knob (`ANTIDOTE_THREDS=4`) warns instead of being silently
/// inert. Keep it in sync with the knob table in the workspace README —
/// `obs` is the lowest layer, so the full list lives here rather than
/// being assembled from the crates that own each knob.
pub const KNOWN_KNOBS: &[&str] = &[
    // tensor / par
    "ANTIDOTE_THREADS",
    "ANTIDOTE_KERNEL_BACKEND",
    // obs
    "ANTIDOTE_OBS",
    "ANTIDOTE_TRACE",
    "ANTIDOTE_LOG",
    "ANTIDOTE_OBS_RECORDER_SLOW",
    "ANTIDOTE_OBS_RECORDER_ERRORS",
    // core / bench training harness
    "ANTIDOTE_SCALE",
    "ANTIDOTE_WORKLOAD",
    "ANTIDOTE_MAX_RETRIES",
    "ANTIDOTE_LR_BACKOFF",
    "ANTIDOTE_GRAD_CLIP",
    "ANTIDOTE_INJECT_FAULT",
    "ANTIDOTE_INJECT_WORKLOAD",
    "ANTIDOTE_CKPT",
    "ANTIDOTE_CKPT_EVERY",
    "ANTIDOTE_RESUME",
    "ANTIDOTE_STOP_AFTER",
    // serve
    "ANTIDOTE_SERVE_WORKERS",
    "ANTIDOTE_SERVE_MAX_BATCH",
    "ANTIDOTE_SERVE_MAX_WAIT_MS",
    "ANTIDOTE_SERVE_QUEUE_CAP",
    "ANTIDOTE_SERVE_DEADLINE_MS",
    "ANTIDOTE_SERVE_QUANT",
    "ANTIDOTE_SERVE_SHED_DEGRADE_WATERMARK",
    "ANTIDOTE_SERVE_SHED_WATERMARK",
    "ANTIDOTE_SERVE_BENCH_REQUESTS",
    "ANTIDOTE_SERVE_BENCH_SEED",
    // chaos mode (serve)
    "ANTIDOTE_CHAOS_KILL_EVERY_MS",
    "ANTIDOTE_CHAOS_KILLS",
    "ANTIDOTE_CHAOS_SEED",
    // overload bench
    "ANTIDOTE_OVERLOAD_SEED",
    // http front-end
    "ANTIDOTE_HTTP_ADDR",
    "ANTIDOTE_HTTP_CONN_WORKERS",
    "ANTIDOTE_HTTP_MAX_BODY",
    "ANTIDOTE_HTTP_READ_TIMEOUT_MS",
    "ANTIDOTE_HTTP_KEEPALIVE_MAX",
    "ANTIDOTE_HTTP_RPS",
    "ANTIDOTE_HTTP_BURST",
    "ANTIDOTE_HTTP_MODEL_DIR",
    // http bench
    "ANTIDOTE_HTTP_BENCH_REQUESTS",
    "ANTIDOTE_HTTP_BENCH_SEED",
    "ANTIDOTE_HTTP_BENCH_CLIENTS",
];

/// Keys starting with this prefix are reserved for unit tests and never
/// warned about.
const TEST_PREFIX: &str = "ANTIDOTE_TEST_";

/// Warns (one `env.ignored` event per offender) about every set
/// `ANTIDOTE_*` variable the workspace does not recognize — the
/// misspelled-knob safety net. Called once per process from
/// `init_from_env`; harmless to call again.
pub fn warn_unknown() {
    warn_unknown_in(std::env::vars());
}

/// [`warn_unknown`] against an explicit `(key, value)` list
/// (unit-testable without polluting the real environment beyond the
/// reserved test prefix).
fn warn_unknown_in(vars: impl Iterator<Item = (String, String)>) {
    for (key, value) in vars {
        if !key.starts_with("ANTIDOTE_") || key.starts_with(TEST_PREFIX) {
            continue;
        }
        if !KNOWN_KNOBS.contains(&key.as_str()) {
            warn_ignored_env(&key, &value, "unrecognized ANTIDOTE_* variable (typo?)");
        }
    }
}

/// Parses `key` as a boolean flag: `1`/`true`/`on`/`yes` and
/// `0`/`false`/`off`/`no` (case-insensitive). Anything else warns and
/// returns `None`.
pub fn flag(key: &str) -> Option<bool> {
    let raw = std::env::var(key).ok()?;
    match raw.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            warn_ignored_env(key, &raw, "must be a boolean (1/0/true/false/on/off)");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{drain_events, reset};

    // Tests mutate process-global env vars; each uses a distinct key and
    // holds the registry lock so event assertions do not interleave.

    #[test]
    fn unset_is_none_without_warning() {
        let _guard = test_lock::hold();
        reset();
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_UNSET"), None);
        assert!(drain_events().iter().all(|l| !l.contains("ANTIDOTE_TEST_UNSET")));
    }

    #[test]
    fn well_formed_values_parse() {
        let _guard = test_lock::hold();
        std::env::set_var("ANTIDOTE_TEST_OK", "42");
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_OK"), Some(42));
        assert_eq!(parse_or("ANTIDOTE_TEST_OK", 7u64), 42);
        assert_eq!(positive::<u64>("ANTIDOTE_TEST_OK"), Some(42));
        std::env::remove_var("ANTIDOTE_TEST_OK");
    }

    #[test]
    fn malformed_values_warn_and_fall_back() {
        let _guard = test_lock::hold();
        reset();
        std::env::set_var("ANTIDOTE_TEST_BAD", "not-a-number");
        assert_eq!(parse::<u64>("ANTIDOTE_TEST_BAD"), None);
        assert_eq!(parse_or("ANTIDOTE_TEST_BAD", 9u64), 9);
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("env.ignored") && l.contains("ANTIDOTE_TEST_BAD")));
        std::env::remove_var("ANTIDOTE_TEST_BAD");
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        let _guard = test_lock::hold();
        reset();
        std::env::set_var("ANTIDOTE_TEST_ZERO", "0");
        assert_eq!(positive::<u64>("ANTIDOTE_TEST_ZERO"), None);
        std::env::set_var("ANTIDOTE_TEST_NEG", "-1.5");
        assert_eq!(positive::<f64>("ANTIDOTE_TEST_NEG"), None);
        let lines = drain_events();
        assert!(lines.iter().any(|l| l.contains("ANTIDOTE_TEST_ZERO")));
        assert!(lines.iter().any(|l| l.contains("ANTIDOTE_TEST_NEG")));
        std::env::remove_var("ANTIDOTE_TEST_ZERO");
        std::env::remove_var("ANTIDOTE_TEST_NEG");
    }

    #[test]
    fn unknown_antidote_vars_warn_known_and_foreign_do_not() {
        let _guard = test_lock::hold();
        reset();
        let vars = [
            ("ANTIDOTE_THREDS", "4"),         // typo'd knob: must warn
            ("ANTIDOTE_THREADS", "4"),        // known knob: silent
            ("ANTIDOTE_SERVE_QUANT", "int8"), // known knob: silent
            ("ANTIDOTE_TEST_WHATEVER", "x"),  // reserved test prefix: silent
            ("PATH", "/usr/bin"),             // foreign var: silent
        ];
        super::warn_unknown_in(
            vars.iter().map(|(k, v)| (k.to_string(), v.to_string())),
        );
        let lines = drain_events();
        assert!(
            lines.iter().any(|l| l.contains("env.ignored") && l.contains("ANTIDOTE_THREDS")),
            "typo'd knob must produce an env.ignored event: {lines:?}"
        );
        for silent in ["ANTIDOTE_THREADS", "ANTIDOTE_SERVE_QUANT", "ANTIDOTE_TEST_WHATEVER", "PATH"] {
            assert!(
                lines.iter().all(|l| !l.contains(silent)),
                "{silent} must not be warned about: {lines:?}"
            );
        }
    }

    #[test]
    fn every_known_knob_has_the_antidote_prefix() {
        for knob in KNOWN_KNOBS {
            assert!(knob.starts_with("ANTIDOTE_"), "bad allowlist entry {knob}");
            assert!(!knob.starts_with(super::TEST_PREFIX), "test keys do not belong in the allowlist");
        }
    }

    #[test]
    fn flags_accept_common_spellings() {
        let _guard = test_lock::hold();
        reset();
        for (raw, want) in [("1", true), ("TRUE", true), ("on", true), ("0", false), ("off", false)] {
            std::env::set_var("ANTIDOTE_TEST_FLAG", raw);
            assert_eq!(flag("ANTIDOTE_TEST_FLAG"), Some(want), "raw={raw}");
        }
        std::env::set_var("ANTIDOTE_TEST_FLAG", "maybe");
        assert_eq!(flag("ANTIDOTE_TEST_FLAG"), None);
        std::env::remove_var("ANTIDOTE_TEST_FLAG");
        assert!(drain_events().iter().any(|l| l.contains("must be a boolean")));
    }
}
