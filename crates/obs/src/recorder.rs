//! Flight recorder: a bounded store of complete per-request trace
//! records, retaining exemplars — the slowest-N successful requests and
//! the most recent errored ones.
//!
//! The serving stack builds one [`TraceRecord`] per traced request
//! (queue wait, shed/degrade decision, schedule scale, batch id and
//! occupancy, per-layer spans and MAC counters) and hands it to
//! [`record_trace`]. Retention is two independent bounded sets:
//!
//! - **slow**: the N highest-`total_ns` records with `outcome == "ok"`
//!   (cap `ANTIDOTE_OBS_RECORDER_SLOW`, default 16);
//! - **errored**: the most recent records with any other outcome
//!   (ring semantics, cap `ANTIDOTE_OBS_RECORDER_ERRORS`, default 64).
//!
//! [`traces_json`] renders both sets for `GET /debug/traces`;
//! [`recorder_dump_events`] flushes summaries into the JSONL event ring
//! on graceful drain so a terminating process leaves its exemplars in
//! the trace file. Recording is a no-op while observability is
//! disabled.

use crate::json;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Default cap for the slowest-N set.
pub const DEFAULT_SLOW_CAP: usize = 16;
/// Default cap for the errored ring.
pub const DEFAULT_ERROR_CAP: usize = 64;

/// One span inside a [`TraceRecord`], in nanoseconds relative to the
/// request's submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanRec {
    /// Span name (e.g. `queue.wait`, `fwd.layer03`).
    pub name: String,
    /// Start offset from request submission, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// The complete post-hoc explanation of one traced request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// 32-hex-char trace id (echoed to the client).
    pub trace_id: String,
    /// Model route the request resolved to (empty if it never did).
    pub model: String,
    /// `"ok"` or the typed error kind (`deadline_exceeded`, …).
    pub outcome: String,
    /// Human-readable error detail (empty on success).
    pub detail: String,
    /// Priority lane label.
    pub priority: String,
    /// Admission decision: `admit`, `degrade`, or `shed`.
    pub shed: String,
    /// Schedule scale the request ran (or would have run) at.
    pub schedule_scale: f64,
    /// Whether admission degraded the request's schedule.
    pub degraded: bool,
    /// Requested MAC budget (`None` when the request ran dense).
    pub budget_macs: Option<f64>,
    /// MACs actually spent.
    pub achieved_macs: f64,
    /// Batch the request executed in (0 if it never reached one).
    pub batch_id: u64,
    /// Requests in that batch.
    pub batch_occupancy: u64,
    /// Worker replica that ran the batch (`None` pre-execution).
    pub worker: Option<u64>,
    /// Time spent queued, nanoseconds.
    pub queue_wait_ns: u64,
    /// Submission-to-completion latency, nanoseconds.
    pub total_ns: u64,
    /// Monotonic capture time (ns since process start) for ordering.
    pub mono_ns: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Per-layer keep fractions of the schedule that served it.
    pub keep_fractions: Vec<f64>,
    /// Span tree (request-relative offsets).
    pub spans: Vec<TraceSpanRec>,
    /// Counter deltas attributed to the request (per-layer MACs).
    pub counters: Vec<(String, u64)>,
}

impl TraceRecord {
    /// A blank record for `trace_id`, stamped with the current
    /// monotonic and wall-clock capture times.
    pub fn new(trace_id: &str) -> Self {
        let mono_ns =
            u64::try_from(crate::event::start_instant().elapsed().as_nanos()).unwrap_or(u64::MAX);
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self {
            trace_id: trace_id.to_string(),
            model: String::new(),
            outcome: "ok".to_string(),
            detail: String::new(),
            priority: String::new(),
            shed: String::new(),
            schedule_scale: 0.0,
            degraded: false,
            budget_macs: None,
            achieved_macs: 0.0,
            batch_id: 0,
            batch_occupancy: 0,
            worker: None,
            queue_wait_ns: 0,
            total_ns: 0,
            mono_ns,
            unix_ms,
            keep_fractions: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// `true` when the record describes a failed request.
    pub fn is_error(&self) -> bool {
        self.outcome != "ok"
    }

    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                    json::escape(&s.name),
                    s.start_ns,
                    s.dur_ns
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", json::escape(n)))
            .collect();
        let fractions: Vec<String> =
            self.keep_fractions.iter().map(|f| json::number(*f)).collect();
        format!(
            concat!(
                "{{\"trace_id\":\"{}\",\"model\":\"{}\",\"outcome\":\"{}\",\"detail\":\"{}\",",
                "\"priority\":\"{}\",\"shed\":\"{}\",\"schedule_scale\":{},\"degraded\":{},",
                "\"budget_macs\":{},\"achieved_macs\":{},\"batch_id\":{},\"batch_occupancy\":{},",
                "\"worker\":{},\"queue_wait_ns\":{},\"total_ns\":{},\"mono_ns\":{},\"unix_ms\":{},",
                "\"keep_fractions\":[{}],\"spans\":[{}],\"counters\":[{}]}}"
            ),
            json::escape(&self.trace_id),
            json::escape(&self.model),
            json::escape(&self.outcome),
            json::escape(&self.detail),
            json::escape(&self.priority),
            json::escape(&self.shed),
            json::number(self.schedule_scale),
            self.degraded,
            self.budget_macs.map_or("null".to_string(), json::number),
            json::number(self.achieved_macs),
            self.batch_id,
            self.batch_occupancy,
            self.worker.map_or("null".to_string(), |w| w.to_string()),
            self.queue_wait_ns,
            self.total_ns,
            self.mono_ns,
            self.unix_ms,
            fractions.join(","),
            spans.join(","),
            counters.join(",")
        )
    }
}

#[derive(Debug)]
struct RecorderState {
    /// Highest-latency successful records, sorted descending by
    /// `total_ns`.
    slow: Vec<TraceRecord>,
    /// Most recent errored records (oldest evicted first).
    errored: VecDeque<TraceRecord>,
    recorded: u64,
    evicted: u64,
    slow_cap: usize,
    err_cap: usize,
}

impl Default for RecorderState {
    fn default() -> Self {
        Self {
            slow: Vec::new(),
            errored: VecDeque::new(),
            recorded: 0,
            evicted: 0,
            slow_cap: DEFAULT_SLOW_CAP,
            err_cap: DEFAULT_ERROR_CAP,
        }
    }
}

fn state() -> &'static Mutex<RecorderState> {
    static STATE: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(RecorderState::default()))
}

/// Overrides the retention caps (both clamped to at least 1). Applied
/// from `ANTIDOTE_OBS_RECORDER_SLOW` / `ANTIDOTE_OBS_RECORDER_ERRORS`
/// by [`crate::init_from_env`].
pub fn set_recorder_caps(slow: usize, errors: usize) {
    let mut st = crate::metrics::lock(state());
    st.slow_cap = slow.max(1);
    st.err_cap = errors.max(1);
    while st.slow.len() > st.slow_cap {
        st.slow.pop();
        st.evicted += 1;
    }
    while st.errored.len() > st.err_cap {
        st.errored.pop_front();
        st.evicted += 1;
    }
}

/// Retains `rec` per the exemplar policy. A no-op while observability
/// is disabled ([`crate::enabled`]).
pub fn record_trace(rec: TraceRecord) {
    if !crate::enabled() {
        return;
    }
    let mut st = crate::metrics::lock(state());
    st.recorded += 1;
    if rec.is_error() {
        if st.errored.len() == st.err_cap {
            st.errored.pop_front();
            st.evicted += 1;
        }
        st.errored.push_back(rec);
        return;
    }
    let cap = st.slow_cap;
    if st.slow.len() == cap && st.slow.last().is_some_and(|l| rec.total_ns <= l.total_ns) {
        st.evicted += 1;
        return;
    }
    let pos = st
        .slow
        .binary_search_by(|r| rec.total_ns.cmp(&r.total_ns))
        .unwrap_or_else(|p| p);
    st.slow.insert(pos, rec);
    if st.slow.len() > cap {
        st.slow.pop();
        st.evicted += 1;
    }
}

/// `(recorded, evicted)` totals since startup.
pub fn recorder_counts() -> (u64, u64) {
    let st = crate::metrics::lock(state());
    (st.recorded, st.evicted)
}

/// Drops every retained record and zeroes the totals (tests).
pub fn clear_recorder() {
    let mut st = crate::metrics::lock(state());
    st.slow.clear();
    st.errored.clear();
    st.recorded = 0;
    st.evicted = 0;
}

/// Renders the recorder contents for `GET /debug/traces`:
/// `{"recorded":…,"evicted":…,"slow":[…],"errored":[…]}` with the
/// errored set newest-first.
pub fn traces_json() -> String {
    let st = crate::metrics::lock(state());
    let slow: Vec<String> = st.slow.iter().map(TraceRecord::to_json).collect();
    let errored: Vec<String> = st.errored.iter().rev().map(TraceRecord::to_json).collect();
    format!(
        "{{\"recorded\":{},\"evicted\":{},\"slow_cap\":{},\"error_cap\":{},\"slow\":[{}],\"errored\":[{}]}}",
        st.recorded,
        st.evicted,
        st.slow_cap,
        st.err_cap,
        slow.join(","),
        errored.join(",")
    )
}

/// Flushes a `trace.flush` summary event per retained record into the
/// JSONL ring (and trace file sink, when set) — called on graceful
/// drain so exemplars survive process exit.
pub fn recorder_dump_events() {
    use crate::event::{info, Value};
    let st = crate::metrics::lock(state());
    for rec in st.slow.iter().chain(st.errored.iter()) {
        info(
            "trace.flush",
            &[
                ("trace_id", Value::Str(&rec.trace_id)),
                ("model", Value::Str(&rec.model)),
                ("outcome", Value::Str(&rec.outcome)),
                ("priority", Value::Str(&rec.priority)),
                ("total_ns", Value::U64(rec.total_ns)),
                ("queue_wait_ns", Value::U64(rec.queue_wait_ns)),
                ("batch_id", Value::U64(rec.batch_id)),
                ("spans", Value::U64(rec.spans.len() as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{reset, set_enabled};

    fn rec(id: &str, outcome: &str, total_ns: u64) -> TraceRecord {
        let mut r = TraceRecord::new(id);
        r.outcome = outcome.to_string();
        r.total_ns = total_ns;
        r
    }

    #[test]
    fn recorder_keeps_slowest_and_errored() {
        let _guard = test_lock::hold();
        reset();
        clear_recorder();
        set_recorder_caps(2, 2);
        set_enabled(true);
        record_trace(rec("aa", "ok", 10));
        record_trace(rec("bb", "ok", 30));
        record_trace(rec("cc", "ok", 20));
        record_trace(rec("dd", "ok", 5)); // too fast: evicted
        record_trace(rec("e1", "deadline_exceeded", 1));
        record_trace(rec("e2", "overloaded", 1));
        record_trace(rec("e3", "overloaded", 1)); // evicts e1
        set_enabled(false);
        let js = traces_json();
        assert!(js.contains("\"bb\"") && js.contains("\"cc\""), "{js}");
        assert!(!js.contains("\"aa\"") && !js.contains("\"dd\""), "{js}");
        assert!(js.contains("\"e2\"") && js.contains("\"e3\""), "{js}");
        assert!(!js.contains("\"e1\""), "{js}");
        let (recorded, evicted) = recorder_counts();
        assert_eq!(recorded, 7);
        assert_eq!(evicted, 3);
        clear_recorder();
        set_recorder_caps(DEFAULT_SLOW_CAP, DEFAULT_ERROR_CAP);
        reset();
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = test_lock::hold();
        reset();
        clear_recorder();
        set_enabled(false);
        record_trace(rec("zz", "ok", 99));
        assert_eq!(recorder_counts(), (0, 0));
        clear_recorder();
        reset();
    }

    #[test]
    fn record_json_is_well_formed() {
        let mut r = TraceRecord::new("abc123");
        r.model = "vgg-\"quoted\"".to_string();
        r.budget_macs = Some(1.5e6);
        r.worker = Some(2);
        r.keep_fractions = vec![0.5, 1.0];
        r.spans.push(TraceSpanRec {
            name: "fwd.layer00".to_string(),
            start_ns: 10,
            dur_ns: 20,
        });
        r.counters.push(("fwd.layer00.macs".to_string(), 123));
        let js = r.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"trace_id\":\"abc123\""));
        assert!(js.contains("vgg-\\\"quoted\\\""));
        assert!(js.contains("\"budget_macs\":1500000"));
        assert!(js.contains("\"worker\":2"));
        assert!(js.contains("\"keep_fractions\":[0.5,1]"));
        assert!(js.contains("\"spans\":[{\"name\":\"fwd.layer00\""));
        assert!(js.contains("\"counters\":[{\"name\":\"fwd.layer00.macs\",\"value\":123}]"));
        // No budget → null.
        let r2 = TraceRecord::new("x");
        assert!(r2.to_json().contains("\"budget_macs\":null"));
    }
}
