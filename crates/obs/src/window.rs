//! Rotating-bucket time windows over counters, gauges, and histogram
//! samples.
//!
//! Lifetime aggregates ([`crate::snapshot`]) answer "since boot"
//! questions; operating a serving fleet needs "right now" ones — the
//! 1s/10s/60s request rate, the p99 over the last minute. Each window
//! here is a fixed array of [`WINDOW_BUCKETS`] one-second buckets,
//! indexed by `tick % WINDOW_BUCKETS` where a *tick* is whole seconds
//! since the process observability epoch ([`now_tick`]). Every bucket
//! carries the tick it was last written at, so stale buckets (the ring
//! wrapped without traffic) are ignored on read without any background
//! rotation thread — writes stamp, reads filter.
//!
//! All types expose `_at(tick, ..)` variants taking an explicit tick so
//! unit tests (and the windowed-metrics ground-truth gates in
//! `crates/bench`) can drive deterministic clocks; the tickless methods
//! just call [`now_tick`].

use crate::stats::percentile;

/// Number of one-second buckets per window: windows answer questions
/// about the last 60 seconds at one-second resolution.
pub const WINDOW_BUCKETS: usize = 60;

/// Sample cap per bucket in a [`SampleWindow`]; excess samples within
/// one second still count but are not retained for percentiles.
const SAMPLES_PER_BUCKET: usize = 256;

/// Sentinel stamp for a bucket that has never been written.
const EMPTY: u64 = u64::MAX;

/// Whole seconds elapsed since the process observability epoch — the
/// tick value the tickless window methods stamp writes with.
pub fn now_tick() -> u64 {
    crate::event::start_instant().elapsed().as_secs()
}

/// `true` when a bucket stamped at `stamp` is within the last `n`
/// buckets ending at `tick` (inclusive).
fn in_window(stamp: u64, tick: u64, n: usize) -> bool {
    stamp != EMPTY && stamp <= tick && tick - stamp < n as u64
}

/// A 60×1s rotating window over a monotonic counter: records deltas
/// and reports sums/rates over the trailing 1/10/60 buckets.
#[derive(Debug, Clone)]
pub struct RateWindow {
    /// `(stamp, sum-of-deltas-that-second)` per bucket.
    buckets: [(u64, u64); WINDOW_BUCKETS],
}

impl Default for RateWindow {
    fn default() -> Self {
        Self {
            buckets: [(EMPTY, 0); WINDOW_BUCKETS],
        }
    }
}

impl RateWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` in the current second ([`now_tick`]).
    pub fn add(&mut self, delta: u64) {
        self.add_at(now_tick(), delta);
    }

    /// Adds `delta` in the bucket for `tick`, resetting the bucket if
    /// the ring has wrapped past it since it was last written.
    pub fn add_at(&mut self, tick: u64, delta: u64) {
        let b = &mut self.buckets[(tick % WINDOW_BUCKETS as u64) as usize];
        if b.0 != tick {
            *b = (tick, 0);
        }
        b.1 = b.1.saturating_add(delta);
    }

    /// Sum of deltas over the last `n` buckets ending at [`now_tick`].
    pub fn sum(&self, n: usize) -> u64 {
        self.sum_at(now_tick(), n)
    }

    /// Sum of deltas over the last `n` buckets ending at `tick`
    /// (inclusive); stale buckets are excluded.
    pub fn sum_at(&self, tick: u64, n: usize) -> u64 {
        self.buckets
            .iter()
            .filter(|(stamp, _)| in_window(*stamp, tick, n.min(WINDOW_BUCKETS)))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Per-second rate over the last `n` buckets ending at `tick`.
    pub fn rate_at(&self, tick: u64, n: usize) -> f64 {
        let n = n.clamp(1, WINDOW_BUCKETS);
        self.sum_at(tick, n) as f64 / n as f64
    }

    /// Per-second rate over the last `n` buckets ending at [`now_tick`].
    pub fn rate(&self, n: usize) -> f64 {
        self.rate_at(now_tick(), n)
    }
}

/// A 60×1s rotating window over a gauge: tracks the min/max value seen
/// each second so `/metrics` can report the 60s range.
#[derive(Debug, Clone)]
pub struct GaugeWindow {
    /// `(stamp, min, max)` per bucket.
    buckets: [(u64, f64, f64); WINDOW_BUCKETS],
}

impl Default for GaugeWindow {
    fn default() -> Self {
        Self {
            buckets: [(EMPTY, 0.0, 0.0); WINDOW_BUCKETS],
        }
    }
}

impl GaugeWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a gauge write in the current second ([`now_tick`]).
    pub fn set(&mut self, value: f64) {
        self.set_at(now_tick(), value);
    }

    /// Records a gauge write in the bucket for `tick`.
    pub fn set_at(&mut self, tick: u64, value: f64) {
        let b = &mut self.buckets[(tick % WINDOW_BUCKETS as u64) as usize];
        if b.0 != tick {
            *b = (tick, value, value);
        } else {
            b.1 = b.1.min(value);
            b.2 = b.2.max(value);
        }
    }

    /// `(min, max)` over the last `n` buckets ending at `tick`, or
    /// `None` if no write landed in the window.
    pub fn range_at(&self, tick: u64, n: usize) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for &(stamp, lo, hi) in &self.buckets {
            if in_window(stamp, tick, n.min(WINDOW_BUCKETS)) {
                range = Some(match range {
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                    None => (lo, hi),
                });
            }
        }
        range
    }

    /// `(min, max)` over the last `n` buckets ending at [`now_tick`].
    pub fn range(&self, n: usize) -> Option<(f64, f64)> {
        self.range_at(now_tick(), n)
    }
}

/// One second's worth of retained histogram samples.
#[derive(Debug, Clone, Default)]
struct SampleBucket {
    stamp: u64,
    count: u64,
    samples: Vec<f64>,
}

/// A 60×1s rotating window over histogram samples: retains up to 256
/// samples per second and reports windowed counts and percentiles.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    buckets: Vec<SampleBucket>,
}

impl Default for SampleWindow {
    fn default() -> Self {
        Self {
            buckets: vec![
                SampleBucket {
                    stamp: EMPTY,
                    count: 0,
                    samples: Vec::new(),
                };
                WINDOW_BUCKETS
            ],
        }
    }
}

impl SampleWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample in the current second ([`now_tick`]).
    pub fn record(&mut self, value: f64) {
        self.record_at(now_tick(), value);
    }

    /// Records one sample in the bucket for `tick`. Past the per-bucket
    /// retention cap the sample still counts but is not kept for
    /// percentiles.
    pub fn record_at(&mut self, tick: u64, value: f64) {
        let b = &mut self.buckets[(tick % WINDOW_BUCKETS as u64) as usize];
        if b.stamp != tick {
            b.stamp = tick;
            b.count = 0;
            b.samples.clear();
        }
        b.count += 1;
        if b.samples.len() < SAMPLES_PER_BUCKET {
            b.samples.push(value);
        }
    }

    /// Samples recorded (retained or not) over the last `n` buckets
    /// ending at `tick`.
    pub fn count_at(&self, tick: u64, n: usize) -> u64 {
        self.buckets
            .iter()
            .filter(|b| in_window(b.stamp, tick, n.min(WINDOW_BUCKETS)))
            .map(|b| b.count)
            .sum()
    }

    /// Retained samples over the last `n` buckets ending at `tick`,
    /// sorted ascending (the input shape [`crate::percentile`] expects).
    pub fn sorted_at(&self, tick: u64, n: usize) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .buckets
            .iter()
            .filter(|b| in_window(b.stamp, tick, n.min(WINDOW_BUCKETS)))
            .flat_map(|b| b.samples.iter().copied())
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Nearest-rank `(p50, p95, p99)` over the retained samples in the
    /// last `n` buckets ending at `tick` (zeros when empty).
    pub fn percentiles_at(&self, tick: u64, n: usize) -> (f64, f64, f64) {
        let sorted = self.sorted_at(tick, n);
        (
            percentile(&sorted, 50.0),
            percentile(&sorted, 95.0),
            percentile(&sorted, 99.0),
        )
    }

    /// [`SampleWindow::percentiles_at`] ending at [`now_tick`].
    pub fn percentiles(&self, n: usize) -> (f64, f64, f64) {
        self.percentiles_at(now_tick(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_window_sums_and_rotates() {
        let mut w = RateWindow::new();
        for tick in 0..5 {
            w.add_at(tick, 10);
        }
        assert_eq!(w.sum_at(4, 1), 10);
        assert_eq!(w.sum_at(4, 5), 50);
        assert_eq!(w.sum_at(4, 60), 50);
        // 2 ticks later, the last-1s bucket is empty and 60s still sees all.
        assert_eq!(w.sum_at(6, 1), 0);
        assert_eq!(w.sum_at(6, 60), 50);
        // Rates are per second over the window length.
        assert!((w.rate_at(4, 10) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rate_window_wraps_and_clears_stale_buckets() {
        let mut w = RateWindow::new();
        w.add_at(3, 7);
        // Same ring slot one full revolution later must not double-count.
        w.add_at(3 + WINDOW_BUCKETS as u64, 5);
        assert_eq!(w.sum_at(3 + WINDOW_BUCKETS as u64, 60), 5);
    }

    #[test]
    fn stale_buckets_are_excluded_without_writes() {
        let mut w = RateWindow::new();
        w.add_at(10, 42);
        // Far in the future, nothing in any window — no rotation thread
        // needed, reads filter on the stamp.
        assert_eq!(w.sum_at(10 + 200, 60), 0);
    }

    #[test]
    fn gauge_window_tracks_min_max() {
        let mut w = GaugeWindow::new();
        w.set_at(0, 5.0);
        w.set_at(0, 1.0);
        w.set_at(2, 9.0);
        assert_eq!(w.range_at(2, 60), Some((1.0, 9.0)));
        assert_eq!(w.range_at(2, 1), Some((9.0, 9.0)));
        assert_eq!(w.range_at(100, 30), None);
    }

    #[test]
    fn sample_window_percentiles_match_ground_truth() {
        let mut w = SampleWindow::new();
        // 100 samples spread over 10 seconds: values 1..=100.
        for i in 0..100u64 {
            w.record_at(i / 10, (i + 1) as f64);
        }
        assert_eq!(w.count_at(9, 60), 100);
        let (p50, p95, p99) = w.percentiles_at(9, 60);
        assert_eq!(p50, 50.0);
        assert_eq!(p95, 95.0);
        assert_eq!(p99, 99.0);
        // A 1s window only sees the last second's ten samples.
        assert_eq!(w.count_at(9, 1), 10);
        let (p50_1s, _, _) = w.percentiles_at(9, 1);
        assert_eq!(p50_1s, 95.0);
    }

    #[test]
    fn sample_window_caps_retention_but_counts_all() {
        let mut w = SampleWindow::new();
        for i in 0..1000 {
            w.record_at(5, i as f64);
        }
        assert_eq!(w.count_at(5, 1), 1000);
        assert_eq!(w.sorted_at(5, 1).len(), 256);
    }
}
