//! Prometheus text-exposition rendering (text format version 0.0.4).
//!
//! [`PromDoc`] is a small document builder the HTTP layer fills with
//! samples from its own counters, per-model serve metrics, and the obs
//! registry ([`render_snapshot`]). It guarantees the structural
//! invariants scrapers (and our own exposition lint in
//! `crates/http/tests`) rely on:
//!
//! - every metric family appears exactly once, with one `# TYPE` line
//!   emitted before any of its samples;
//! - metric names are sanitized to `[a-zA-Z_][a-zA-Z0-9_]*`
//!   ([`metric_name`]) — the obs convention `fwd.layer03.macs` becomes
//!   `fwd_layer03_macs`;
//! - label values are escaped per the exposition spec
//!   ([`label_escape`]: `\\`, `\"`, `\n`);
//! - histograms render cumulative `_bucket{le="…"}` series over the
//!   fixed [`HIST_LE`] bounds plus `+Inf`, with `_sum`/`_count`
//!   consistent with the retained sample window.

use crate::metrics::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram bucket upper bounds (log-ish spacing). One fixed ladder
/// covers the workspace's histogram value ranges: keep-rates (0–1),
/// batch occupancies (1–64), millisecond latencies (0.1–10 000), MAC
/// counts (1e6+).
pub const HIST_LE: &[f64] = &[
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 5000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
];

/// Sanitizes a raw metric name to the Prometheus charset: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit
/// gets a `_` prefix.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sample value: decimal for finite numbers, `+Inf`/`-Inf`/
/// `NaN` for the specials the format defines.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[derive(Debug)]
struct Family {
    kind: &'static str,
    /// Pre-rendered sample lines in insertion order.
    lines: Vec<String>,
}

/// A Prometheus exposition document under construction. Families are
/// rendered name-sorted; samples keep insertion order within a family.
#[derive(Debug, Default)]
pub struct PromDoc {
    families: BTreeMap<String, Family>,
}

impl PromDoc {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, kind: &'static str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                lines: Vec::new(),
            })
    }

    fn render_labels(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", metric_name(k), label_escape(v)))
            .collect();
        format!("{{{}}}", parts.join(","))
    }

    /// Adds one sample to family `name` (already sanitized by the
    /// caller or via [`metric_name`]). `kind` is `counter`, `gauge`,
    /// `histogram`, or `summary`; the first registration of a family
    /// fixes its kind.
    pub fn sample(&mut self, name: &str, kind: &'static str, labels: &[(&str, &str)], value: f64) {
        let line = format!("{name}{} {}", Self::render_labels(labels), format_value(value));
        self.family(name, kind).lines.push(line);
    }

    /// Adds a suffixed sample (`_bucket`, `_sum`, `_count`, or a
    /// quantile series) that belongs to family `name` — the `# TYPE`
    /// line is emitted for `name`, not the suffixed series.
    pub fn sample_suffixed(
        &mut self,
        name: &str,
        kind: &'static str,
        suffix: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let line = format!(
            "{name}{suffix}{} {}",
            Self::render_labels(labels),
            format_value(value)
        );
        self.family(name, kind).lines.push(line);
    }

    /// Adds a full histogram: cumulative buckets over [`HIST_LE`] plus
    /// `+Inf`, then `_sum` and `_count`. `cumulative` must align with
    /// [`HIST_LE`]; `count` is the `+Inf` value.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        cumulative: &[u64],
        sum: f64,
        count: u64,
    ) {
        debug_assert_eq!(cumulative.len(), HIST_LE.len());
        for (le, c) in HIST_LE.iter().zip(cumulative) {
            let le_s = format_value(*le);
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &le_s));
            self.sample_suffixed(name, "histogram", "_bucket", &ls, *c as f64);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample_suffixed(name, "histogram", "_bucket", &ls, count as f64);
        self.sample_suffixed(name, "histogram", "_sum", labels, sum);
        self.sample_suffixed(name, "histogram", "_count", labels, count as f64);
    }

    /// Renders the document: for each family a `# TYPE` line followed
    /// by its samples, families name-sorted, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            for line in &fam.lines {
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }
}

/// Renders an obs [`Snapshot`] into `doc` under `prefix` (e.g.
/// `antidote_obs_`):
///
/// - counters as `{prefix}{name}_total` plus a 60s-windowed
///   `{prefix}{name}_rate` gauge (`window` label: `1s`/`10s`/`60s`);
/// - gauges as `{prefix}{name}`;
/// - spans as `{prefix}{name}_seconds_total` / `{prefix}{name}_calls_total`;
/// - histograms as cumulative-bucket histograms over the retained
///   window plus a `{prefix}{name}_60s` summary (windowed quantiles).
pub fn render_snapshot(doc: &mut PromDoc, snap: &Snapshot, prefix: &str) {
    for (name, v) in &snap.counters {
        let base = format!("{prefix}{}", metric_name(name));
        doc.sample(&format!("{base}_total"), "counter", &[], *v as f64);
    }
    for w in &snap.counter_rates {
        let base = format!("{prefix}{}_rate", metric_name(&w.name));
        doc.sample(&base, "gauge", &[("window", "1s")], w.last_1s as f64);
        doc.sample(&base, "gauge", &[("window", "10s")], w.last_10s as f64 / 10.0);
        doc.sample(&base, "gauge", &[("window", "60s")], w.last_60s as f64 / 60.0);
    }
    for (name, v) in &snap.gauges {
        doc.sample(&format!("{prefix}{}", metric_name(name)), "gauge", &[], *v);
    }
    for s in &snap.spans {
        let base = format!("{prefix}{}", metric_name(&s.name));
        doc.sample(
            &format!("{base}_seconds_total"),
            "counter",
            &[],
            s.total_ns as f64 / 1e9,
        );
        doc.sample(&format!("{base}_calls_total"), "counter", &[], s.count as f64);
    }
    for h in &snap.hists {
        let base = format!("{prefix}{}", metric_name(&h.name));
        // `+Inf` counts every retained sample, including those above the
        // top HIST_LE bound (which no finite bucket covers).
        doc.histogram(&base, &[], &h.buckets, h.sum, h.retained);
        let wbase = format!("{base}_60s");
        doc.sample(&wbase, "summary", &[("quantile", "0.5")], h.w_p50);
        doc.sample(&wbase, "summary", &[("quantile", "0.95")], h.w_p95);
        doc.sample(&wbase, "summary", &[("quantile", "0.99")], h.w_p99);
        doc.sample_suffixed(&wbase, "summary", "_count", &[], h.w_count as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("fwd.layer03.macs"), "fwd_layer03_macs");
        assert_eq!(metric_name("a-b c"), "a_b_c");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn label_values_escape_specials() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn special_values_render_per_spec() {
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }

    #[test]
    fn type_line_precedes_samples_and_is_unique() {
        let mut doc = PromDoc::new();
        doc.sample("demo_total", "counter", &[("model", "vgg")], 3.0);
        doc.sample("demo_total", "counter", &[("model", "vgg-int8")], 4.0);
        doc.sample("alpha", "gauge", &[], 1.0);
        let text = doc.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE alpha gauge",
                "alpha 1",
                "# TYPE demo_total counter",
                "demo_total{model=\"vgg\"} 3",
                "demo_total{model=\"vgg-int8\"} 4",
            ]
        );
    }

    #[test]
    fn histograms_are_cumulative_and_consistent() {
        let mut doc = PromDoc::new();
        let mut cumulative = vec![0u64; HIST_LE.len()];
        // Three samples: 0.3, 7.0, 7.0.
        for (i, le) in HIST_LE.iter().enumerate() {
            let mut c = 0;
            for v in [0.3, 7.0, 7.0] {
                if v <= *le {
                    c += 1;
                }
            }
            cumulative[i] = c;
        }
        doc.histogram("lat_ms", &[], &cumulative, 14.3, 3);
        let text = doc.render();
        assert!(text.starts_with("# TYPE lat_ms histogram\n"));
        let mut prev = 0.0;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("lat_ms_bucket")) {
            bucket_lines += 1;
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "buckets must be monotone: {line}");
            prev = v;
        }
        assert_eq!(bucket_lines, HIST_LE.len() + 1);
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_sum 14.3"));
        assert!(text.contains("lat_ms_count 3"));
    }
}
