//! RAII span timers with thread-safe per-name aggregation.

use crate::metrics::{lock, registry};
use std::borrow::Cow;
use std::time::Instant;

/// Aggregated wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed span instances.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance, nanoseconds.
    pub min_ns: u64,
    /// Slowest instance, nanoseconds.
    pub max_ns: u64,
}

impl Default for SpanStat {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// A live span: drops record elapsed time into the registry under the
/// span's name. Obtained from [`span`] or [`layer_span`]; when
/// observability is disabled the guard is inert and costs nothing to
/// drop.
#[derive(Debug)]
#[must_use = "a span guard measures until dropped; binding it to _ drops immediately"]
pub struct SpanGuard {
    live: Option<(Cow<'static, str>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::trace::collect_span(&name, start, ns);
            lock(&registry().spans)
                .entry(name.into_owned())
                .or_default()
                .record(ns);
        }
    }
}

/// Starts a span timer under `name`.
///
/// Disabled ([`crate::enabled`] false) this is one atomic load and
/// returns an inert guard; no clock is read and static names are not
/// allocated.
pub fn span<N: Into<Cow<'static, str>>>(name: N) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some((name.into(), Instant::now())),
    }
}

/// Starts a span named `"{stage}.layer{index:02}"` — the per-layer
/// profiling convention used by the model forward paths. The name is
/// only formatted (allocated) when observability is enabled.
pub fn layer_span(stage: &str, index: usize) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some((Cow::Owned(format!("{stage}.layer{index:02}")), Instant::now())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{reset, set_enabled, snapshot};

    #[test]
    fn spans_aggregate_count_total_min_max() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("t.span.agg");
            std::hint::black_box(());
        }
        set_enabled(false);
        let snap = snapshot();
        let s = snap.span("t.span.agg").expect("span recorded");
        assert_eq!(s.count, 3);
        assert!(s.total_ns >= s.min_ns.saturating_add(s.max_ns).saturating_sub(s.max_ns));
        assert!(s.min_ns <= s.max_ns);
        assert!(s.max_ns <= s.total_ns);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(false);
        {
            let _s = span("t.span.disabled");
        }
        {
            let _s = layer_span("t.fwd", 3);
        }
        let snap = snapshot();
        assert!(snap.span("t.span.disabled").is_none());
        assert!(snap.span("t.fwd.layer03").is_none());
        reset();
    }

    #[test]
    fn layer_span_naming_convention() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        {
            let _s = layer_span("fwd", 7);
        }
        set_enabled(false);
        assert!(snapshot().span("fwd.layer07").is_some());
        reset();
    }

    #[test]
    fn spans_are_thread_safe() {
        let _guard = test_lock::hold();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10 {
                        let _s = span("t.span.threads");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        assert_eq!(snapshot().span("t.span.threads").unwrap().count, 40);
        reset();
    }
}
