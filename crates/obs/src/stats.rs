//! Shared sample statistics.

/// Nearest-rank percentile of an ascending-sorted sample slice.
///
/// `q` is in percent (`50.0` = median). Empty input returns `0.0`; `q`
/// outside `[0, 100]` is clamped. This is the single percentile
/// implementation shared across the workspace — `antidote-serve`
/// re-exports it as `antidote_serve::metrics::percentile` and the
/// experiment harness (`antidote-bench`) and obs histograms use it too.
///
/// Callers are responsible for sorting; to be robust against NaN use
/// `sort_by(f64::total_cmp)` and drop non-finite samples first (see
/// `LatencySummary::from_samples_ms` in `antidote-serve`).
///
/// # Examples
///
/// ```
/// use antidote_obs::percentile;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&sorted, 50.0), 2.0);
/// assert_eq!(percentile(&sorted, 99.0), 4.0);
/// assert_eq!(percentile(&sorted, 0.0), 1.0);
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 95.0), 95.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 200.0), 3.0);
    }
}
