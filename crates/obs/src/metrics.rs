//! Global metrics registry: counters, gauges, bounded-sample histograms,
//! their rotating 60s windows, and the [`Snapshot`] that freezes
//! everything (spans included) for reporting.

use crate::json;
use crate::span::SpanStat;
use crate::stats::percentile;
use crate::window::{now_tick, GaugeWindow, RateWindow, SampleWindow, WINDOW_BUCKETS};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Histograms keep at most this many recent samples (ring semantics);
/// `count` still reflects every recorded value and evictions increment
/// the `obs.hist_overflow` counter (plus the per-histogram `overflow`
/// snapshot field) so truncation is never silent.
const HIST_CAP: usize = 16_384;

#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, CounterCell>>,
    gauges: Mutex<BTreeMap<String, GaugeCell>>,
    hists: Mutex<BTreeMap<String, BoundedSamples>>,
}

#[derive(Debug, Default)]
struct CounterCell {
    total: u64,
    window: RateWindow,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: f64,
    window: GaugeWindow,
}

#[derive(Debug, Default)]
struct BoundedSamples {
    recent: VecDeque<f64>,
    count: u64,
    /// Samples evicted from the retained ring (lifetime).
    overflow: u64,
    window: SampleWindow,
}

impl BoundedSamples {
    /// Records one sample; returns `true` when an old sample was
    /// evicted (the caller bumps the global overflow counter outside
    /// the hists lock).
    fn record(&mut self, tick: u64, v: f64) -> bool {
        self.count += 1;
        self.window.record_at(tick, v);
        let evicted = self.recent.len() == HIST_CAP;
        if evicted {
            self.recent.pop_front();
            self.overflow += 1;
        }
        self.recent.push_back(v);
        evicted
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Locks a registry map, recovering from poisoning (a panicking worker
/// thread must not take observability down with it).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adds `delta` to the named monotonic counter (and its 60s rate
/// window; when a trace collector is active on this thread the delta is
/// mirrored there too).
///
/// Counters always record (they are cheap and typically increment on
/// rare events like dropped samples); guard calls on hot paths with
/// [`crate::enabled`] at the call site.
pub fn counter_add(name: &str, delta: u64) {
    crate::trace::collect_counter(name, delta);
    let tick = now_tick();
    let mut counters = lock(&registry().counters);
    let cell = counters.entry_or_default(name);
    cell.total += delta;
    cell.window.add_at(tick, delta);
}

/// Current value of a counter (0 if never incremented).
pub fn counter_value(name: &str) -> u64 {
    lock(&registry().counters).get(name).map_or(0, |c| c.total)
}

/// Sets the named gauge to `value` (last-write-wins; the 60s window
/// additionally tracks the min/max written each second).
pub fn gauge_set(name: &str, value: f64) {
    let tick = now_tick();
    let mut gauges = lock(&registry().gauges);
    let cell = gauges.entry_or_default(name);
    cell.value = value;
    cell.window.set_at(tick, value);
}

/// Records one sample into the named histogram. Non-finite samples are
/// dropped with a `obs.nonfinite_dropped` counter increment; evictions
/// from the bounded retained window increment `obs.hist_overflow`.
pub fn hist_record(name: &str, value: f64) {
    if !value.is_finite() {
        counter_add("obs.nonfinite_dropped", 1);
        return;
    }
    let tick = now_tick();
    let evicted = {
        let mut hists = lock(&registry().hists);
        hists.entry_or_default(name).record(tick, value)
    };
    if evicted {
        counter_add("obs.hist_overflow", 1);
    }
}

/// `BTreeMap::entry(name.to_string()).or_default()` without allocating
/// when the key already exists.
trait EntryOrDefault<V: Default> {
    fn entry_or_default(&mut self, name: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, name: &str) -> &mut V {
        if !self.contains_key(name) {
            self.insert(name.to_string(), V::default());
        }
        self.get_mut(name).expect("just inserted")
    }
}

/// Aggregated timings of one span name at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed span instances.
    pub count: u64,
    /// Summed wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance, nanoseconds.
    pub min_ns: u64,
    /// Slowest instance, nanoseconds.
    pub max_ns: u64,
}

/// Percentile summary of one histogram at snapshot time (computed over
/// the retained sample window, with 60s-windowed companions).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total samples ever recorded (including evicted ones).
    pub count: u64,
    /// Nearest-rank p50 of the retained window.
    pub p50: f64,
    /// Nearest-rank p95 of the retained window.
    pub p95: f64,
    /// Nearest-rank p99 of the retained window.
    pub p99: f64,
    /// Smallest retained sample.
    pub min: f64,
    /// Largest retained sample.
    pub max: f64,
    /// Samples evicted from the retained ring (the `obs.hist_overflow`
    /// contribution of this histogram).
    pub overflow: u64,
    /// Samples currently retained (the population behind `p50`/`min`/
    /// `max`, `sum`, and `buckets`).
    pub retained: u64,
    /// Sum of the retained samples (Prometheus `_sum`).
    pub sum: f64,
    /// Cumulative counts of retained samples at each
    /// [`crate::prom::HIST_LE`] bound (Prometheus `_bucket`).
    pub buckets: Vec<u64>,
    /// Samples recorded in the trailing 60s (retained or not).
    pub w_count: u64,
    /// Nearest-rank p50 over the trailing 60s.
    pub w_p50: f64,
    /// Nearest-rank p95 over the trailing 60s.
    pub w_p95: f64,
    /// Nearest-rank p99 over the trailing 60s.
    pub w_p99: f64,
}

/// Windowed sums of one counter at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRates {
    /// Counter name.
    pub name: String,
    /// Sum of increments in the trailing 1 second.
    pub last_1s: u64,
    /// Sum of increments in the trailing 10 seconds.
    pub last_10s: u64,
    /// Sum of increments in the trailing 60 seconds.
    pub last_60s: u64,
}

/// Min/max of one gauge over the trailing 60 seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeRange {
    /// Gauge name.
    pub name: String,
    /// Smallest value written in the trailing 60s.
    pub min_60s: f64,
    /// Largest value written in the trailing 60s.
    pub max_60s: f64,
}

/// A point-in-time copy of every aggregate in the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-name span timings, name-sorted.
    pub spans: Vec<SpanSnapshot>,
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name-sorted.
    pub hists: Vec<HistSnapshot>,
    /// 1s/10s/60s windowed counter sums, name-sorted (only counters
    /// with at least one increment inside the 60s window appear).
    pub counter_rates: Vec<CounterRates>,
    /// 60s gauge ranges, name-sorted (only gauges written inside the
    /// window appear).
    pub gauge_ranges: Vec<GaugeRange>,
}

impl Snapshot {
    /// Looks up a span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Looks up a counter's windowed sums by name.
    pub fn counter_rate(&self, name: &str) -> Option<&CounterRates> {
        self.counter_rates.iter().find(|c| c.name == name)
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the obs crate
    /// is std-only).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                    json::escape(&s.name),
                    s.count,
                    s.total_ns,
                    s.min_ns,
                    s.max_ns
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", json::escape(n)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| {
                format!("{{\"name\":\"{}\",\"value\":{}}}", json::escape(n), json::number(*v))
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{},\"overflow\":{},\"w_count\":{},\"w_p50\":{},\"w_p95\":{},\"w_p99\":{}}}",
                    json::escape(&h.name),
                    h.count,
                    json::number(h.p50),
                    json::number(h.p95),
                    json::number(h.p99),
                    json::number(h.min),
                    json::number(h.max),
                    h.overflow,
                    h.w_count,
                    json::number(h.w_p50),
                    json::number(h.w_p95),
                    json::number(h.w_p99)
                )
            })
            .collect();
        let rates: Vec<String> = self
            .counter_rates
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":\"{}\",\"last_1s\":{},\"last_10s\":{},\"last_60s\":{}}}",
                    json::escape(&c.name),
                    c.last_1s,
                    c.last_10s,
                    c.last_60s
                )
            })
            .collect();
        let ranges: Vec<String> = self
            .gauge_ranges
            .iter()
            .map(|g| {
                format!(
                    "{{\"name\":\"{}\",\"min_60s\":{},\"max_60s\":{}}}",
                    json::escape(&g.name),
                    json::number(g.min_60s),
                    json::number(g.max_60s)
                )
            })
            .collect();
        format!(
            "{{\"spans\":[{}],\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}],\"counter_rates\":[{}],\"gauge_ranges\":[{}]}}",
            spans.join(","),
            counters.join(","),
            gauges.join(","),
            hists.join(","),
            rates.join(","),
            ranges.join(",")
        )
    }
}

/// Freezes every aggregate (spans, counters, gauges, histograms, and
/// their 60s windows) into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    snapshot_at(now_tick())
}

/// [`snapshot`] with an explicit window tick (deterministic tests).
pub fn snapshot_at(tick: u64) -> Snapshot {
    let reg = registry();
    let spans = lock(&reg.spans)
        .iter()
        .map(|(name, s)| SpanSnapshot {
            name: name.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        })
        .collect();
    let (counters, counter_rates) = {
        let guard = lock(&reg.counters);
        let counters: Vec<(String, u64)> =
            guard.iter().map(|(n, c)| (n.clone(), c.total)).collect();
        let rates = guard
            .iter()
            .filter_map(|(n, c)| {
                let last_60s = c.window.sum_at(tick, WINDOW_BUCKETS);
                if last_60s == 0 {
                    return None;
                }
                Some(CounterRates {
                    name: n.clone(),
                    last_1s: c.window.sum_at(tick, 1),
                    last_10s: c.window.sum_at(tick, 10),
                    last_60s,
                })
            })
            .collect();
        (counters, rates)
    };
    let (gauges, gauge_ranges) = {
        let guard = lock(&reg.gauges);
        let gauges: Vec<(String, f64)> =
            guard.iter().map(|(n, g)| (n.clone(), g.value)).collect();
        let ranges = guard
            .iter()
            .filter_map(|(n, g)| {
                g.window.range_at(tick, WINDOW_BUCKETS).map(|(lo, hi)| GaugeRange {
                    name: n.clone(),
                    min_60s: lo,
                    max_60s: hi,
                })
            })
            .collect();
        (gauges, ranges)
    };
    let hists = lock(&reg.hists)
        .iter()
        .map(|(name, h)| {
            let mut sorted: Vec<f64> = h.recent.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            let buckets: Vec<u64> = crate::prom::HIST_LE
                .iter()
                .map(|le| sorted.partition_point(|v| v <= le) as u64)
                .collect();
            let (w_p50, w_p95, w_p99) = h.window.percentiles_at(tick, WINDOW_BUCKETS);
            HistSnapshot {
                name: name.clone(),
                count: h.count,
                p50: percentile(&sorted, 50.0),
                p95: percentile(&sorted, 95.0),
                p99: percentile(&sorted, 99.0),
                min: sorted.first().copied().unwrap_or(0.0),
                max: sorted.last().copied().unwrap_or(0.0),
                overflow: h.overflow,
                retained: sorted.len() as u64,
                sum: sorted.iter().sum(),
                buckets,
                w_count: h.window.count_at(tick, WINDOW_BUCKETS),
                w_p50,
                w_p95,
                w_p99,
            }
        })
        .collect();
    Snapshot {
        spans,
        counters,
        gauges,
        hists,
        counter_rates,
        gauge_ranges,
    }
}

/// Clears all aggregates and the event ring (the trace file sink and
/// enabled flag are left as-is).
pub fn reset() {
    let reg = registry();
    lock(&reg.spans).clear();
    lock(&reg.counters).clear();
    lock(&reg.gauges).clear();
    lock(&reg.hists).clear();
    crate::event::clear_ring();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_gauges_hists_round_trip() {
        let _guard = test_lock::hold();
        reset();
        counter_add("t.counter", 2);
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", 7.5);
        for i in 1..=100 {
            hist_record("t.hist", i as f64);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), Some(5));
        assert_eq!(snap.gauge("t.gauge"), Some(7.5));
        let h = snap.hist("t.hist").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.retained, 100);
        assert_eq!(h.sum, (1..=100).sum::<u64>() as f64);
        reset();
        assert_eq!(counter_value("t.counter"), 0);
    }

    #[test]
    fn windowed_snapshot_reports_rates_and_ranges() {
        let _guard = test_lock::hold();
        reset();
        counter_add("t.windowed", 4);
        gauge_set("t.windowed.gauge", 2.5);
        hist_record("t.windowed.hist", 10.0);
        hist_record("t.windowed.hist", 30.0);
        // Snapshot "now": everything is inside every window.
        let snap = snapshot_at(now_tick());
        let r = snap.counter_rate("t.windowed").expect("windowed counter present");
        assert_eq!(r.last_1s, 4);
        assert_eq!(r.last_60s, 4);
        let g = snap.gauge_ranges.iter().find(|g| g.name == "t.windowed.gauge").unwrap();
        assert_eq!((g.min_60s, g.max_60s), (2.5, 2.5));
        let h = snap.hist("t.windowed.hist").unwrap();
        assert_eq!(h.w_count, 2);
        assert_eq!(h.w_p50, 10.0);
        // 100 ticks later every window has aged out.
        let later = snapshot_at(now_tick() + 100);
        assert!(later.counter_rate("t.windowed").is_none());
        assert!(later.gauge_ranges.iter().all(|g| g.name != "t.windowed.gauge"));
        assert_eq!(later.hist("t.windowed.hist").unwrap().w_count, 0);
        // Lifetime aggregates are unaffected by window aging.
        assert_eq!(later.counter("t.windowed"), Some(4));
        reset();
    }

    #[test]
    fn non_finite_hist_samples_are_dropped_with_counter() {
        let _guard = test_lock::hold();
        reset();
        hist_record("t.nan", f64::NAN);
        hist_record("t.nan", f64::INFINITY);
        hist_record("t.nan", 2.0);
        let snap = snapshot();
        assert_eq!(snap.hist("t.nan").unwrap().count, 1);
        assert_eq!(snap.counter("obs.nonfinite_dropped"), Some(2));
        reset();
    }

    #[test]
    fn histogram_window_is_bounded_and_overflow_is_counted() {
        let _guard = test_lock::hold();
        reset();
        for i in 0..(HIST_CAP + 10) {
            hist_record("t.bounded", i as f64);
        }
        {
            let reg = registry();
            let hists = lock(&reg.hists);
            let h = hists.get("t.bounded").unwrap();
            assert_eq!(h.recent.len(), HIST_CAP);
            assert_eq!(h.count, (HIST_CAP + 10) as u64);
        }
        // Truncation is no longer silent: both the global counter and
        // the per-histogram snapshot field report the evictions.
        let snap = snapshot();
        assert_eq!(snap.counter("obs.hist_overflow"), Some(10));
        assert_eq!(snap.hist("t.bounded").unwrap().overflow, 10);
        assert_eq!(snap.hist("t.bounded").unwrap().retained, HIST_CAP as u64);
        reset();
    }

    #[test]
    fn hist_buckets_are_cumulative_against_the_ladder() {
        let _guard = test_lock::hold();
        reset();
        hist_record("t.buckets", 0.3);
        hist_record("t.buckets", 7.0);
        hist_record("t.buckets", 7.0);
        let snap = snapshot();
        let h = snap.hist("t.buckets").unwrap();
        assert_eq!(h.buckets.len(), crate::prom::HIST_LE.len());
        for (le, c) in crate::prom::HIST_LE.iter().zip(&h.buckets) {
            let want = [0.3, 7.0, 7.0].iter().filter(|v| **v <= *le).count() as u64;
            assert_eq!(*c, want, "le={le}");
        }
        assert!(h.buckets.windows(2).all(|w| w[0] <= w[1]));
        reset();
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let _guard = test_lock::hold();
        reset();
        counter_add("t.json\"quoted", 1);
        gauge_set("t.json.gauge", f64::NAN);
        let js = snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("t.json\\\"quoted"));
        assert!(js.contains("\"value\":null"));
        assert!(js.contains("\"counter_rates\":["));
        reset();
    }
}
