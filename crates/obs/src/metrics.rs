//! Global metrics registry: counters, gauges, bounded-sample histograms,
//! and the [`Snapshot`] that freezes everything (spans included) for
//! reporting.

use crate::json;
use crate::span::SpanStat;
use crate::stats::percentile;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Histograms keep at most this many recent samples (ring semantics);
/// `count` still reflects every recorded value.
const HIST_CAP: usize = 16_384;

#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, BoundedSamples>>,
}

#[derive(Debug, Default)]
struct BoundedSamples {
    recent: VecDeque<f64>,
    count: u64,
}

impl BoundedSamples {
    fn record(&mut self, v: f64) {
        self.count += 1;
        if self.recent.len() == HIST_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(v);
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Locks a registry map, recovering from poisoning (a panicking worker
/// thread must not take observability down with it).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adds `delta` to the named monotonic counter.
///
/// Counters always record (they are cheap and typically increment on
/// rare events like dropped samples); guard calls on hot paths with
/// [`crate::enabled`] at the call site.
pub fn counter_add(name: &str, delta: u64) {
    let mut counters = lock(&registry().counters);
    match counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// Current value of a counter (0 if never incremented).
pub fn counter_value(name: &str) -> u64 {
    lock(&registry().counters).get(name).copied().unwrap_or(0)
}

/// Sets the named gauge to `value` (last-write-wins).
pub fn gauge_set(name: &str, value: f64) {
    let mut gauges = lock(&registry().gauges);
    match gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            gauges.insert(name.to_string(), value);
        }
    }
}

/// Records one sample into the named histogram. Non-finite samples are
/// dropped with a `obs.nonfinite_dropped` counter increment.
pub fn hist_record(name: &str, value: f64) {
    if !value.is_finite() {
        counter_add("obs.nonfinite_dropped", 1);
        return;
    }
    let mut hists = lock(&registry().hists);
    match hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = BoundedSamples::default();
            h.record(value);
            hists.insert(name.to_string(), h);
        }
    }
}

/// Aggregated timings of one span name at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed span instances.
    pub count: u64,
    /// Summed wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance, nanoseconds.
    pub min_ns: u64,
    /// Slowest instance, nanoseconds.
    pub max_ns: u64,
}

/// Percentile summary of one histogram at snapshot time (computed over
/// the retained sample window).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total samples ever recorded (including evicted ones).
    pub count: u64,
    /// Nearest-rank p50 of the retained window.
    pub p50: f64,
    /// Nearest-rank p95 of the retained window.
    pub p95: f64,
    /// Nearest-rank p99 of the retained window.
    pub p99: f64,
    /// Smallest retained sample.
    pub min: f64,
    /// Largest retained sample.
    pub max: f64,
}

/// A point-in-time copy of every aggregate in the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-name span timings, name-sorted.
    pub spans: Vec<SpanSnapshot>,
    /// Counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name-sorted.
    pub hists: Vec<HistSnapshot>,
}

impl Snapshot {
    /// Looks up a span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the obs crate
    /// is std-only).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                    json::escape(&s.name),
                    s.count,
                    s.total_ns,
                    s.min_ns,
                    s.max_ns
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", json::escape(n)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| {
                format!("{{\"name\":\"{}\",\"value\":{}}}", json::escape(n), json::number(*v))
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
                    json::escape(&h.name),
                    h.count,
                    json::number(h.p50),
                    json::number(h.p95),
                    json::number(h.p99),
                    json::number(h.min),
                    json::number(h.max)
                )
            })
            .collect();
        format!(
            "{{\"spans\":[{}],\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
            spans.join(","),
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

/// Freezes every aggregate (spans, counters, gauges, histograms) into a
/// [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let spans = lock(&reg.spans)
        .iter()
        .map(|(name, s)| SpanSnapshot {
            name: name.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        })
        .collect();
    let counters = lock(&reg.counters)
        .iter()
        .map(|(n, &v)| (n.clone(), v))
        .collect();
    let gauges = lock(&reg.gauges)
        .iter()
        .map(|(n, &v)| (n.clone(), v))
        .collect();
    let hists = lock(&reg.hists)
        .iter()
        .map(|(name, h)| {
            let mut sorted: Vec<f64> = h.recent.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            HistSnapshot {
                name: name.clone(),
                count: h.count,
                p50: percentile(&sorted, 50.0),
                p95: percentile(&sorted, 95.0),
                p99: percentile(&sorted, 99.0),
                min: sorted.first().copied().unwrap_or(0.0),
                max: sorted.last().copied().unwrap_or(0.0),
            }
        })
        .collect();
    Snapshot {
        spans,
        counters,
        gauges,
        hists,
    }
}

/// Clears all aggregates and the event ring (the trace file sink and
/// enabled flag are left as-is).
pub fn reset() {
    let reg = registry();
    lock(&reg.spans).clear();
    lock(&reg.counters).clear();
    lock(&reg.gauges).clear();
    lock(&reg.hists).clear();
    crate::event::clear_ring();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_gauges_hists_round_trip() {
        let _guard = test_lock::hold();
        reset();
        counter_add("t.counter", 2);
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", 7.5);
        for i in 1..=100 {
            hist_record("t.hist", i as f64);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), Some(5));
        assert_eq!(snap.gauge("t.gauge"), Some(7.5));
        let h = snap.hist("t.hist").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        reset();
        assert_eq!(counter_value("t.counter"), 0);
    }

    #[test]
    fn non_finite_hist_samples_are_dropped_with_counter() {
        let _guard = test_lock::hold();
        reset();
        hist_record("t.nan", f64::NAN);
        hist_record("t.nan", f64::INFINITY);
        hist_record("t.nan", 2.0);
        let snap = snapshot();
        assert_eq!(snap.hist("t.nan").unwrap().count, 1);
        assert_eq!(snap.counter("obs.nonfinite_dropped"), Some(2));
        reset();
    }

    #[test]
    fn histogram_window_is_bounded() {
        let _guard = test_lock::hold();
        reset();
        for i in 0..(HIST_CAP + 10) {
            hist_record("t.bounded", i as f64);
        }
        let reg = registry();
        let hists = lock(&reg.hists);
        let h = hists.get("t.bounded").unwrap();
        assert_eq!(h.recent.len(), HIST_CAP);
        assert_eq!(h.count, (HIST_CAP + 10) as u64);
        drop(hists);
        reset();
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let _guard = test_lock::hold();
        reset();
        counter_add("t.json\"quoted", 1);
        gauge_set("t.json.gauge", f64::NAN);
        let js = snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("t.json\\\"quoted"));
        assert!(js.contains("\"value\":null"));
        reset();
    }
}
