//! Minimal JSON string escaping for hand-rendered JSONL output.
//!
//! The obs crate is std-only, so event/snapshot serialization writes JSON
//! by hand; keys and string values pass through [`escape`] first.

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values,
/// which raw JSON cannot represent).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
