//! # antidote-obs
//!
//! A lightweight structured-observability layer shared by every crate in
//! the workspace (`DESIGN.md` §9). Std-only, zero dependencies — like the
//! rest of the workspace it must build offline against vendored stand-ins,
//! so there is no `tracing`/`metrics` facade here, just three primitives:
//!
//! 1. **Spans** ([`span`]): RAII wall-clock timers aggregated per name
//!    (count / total / min / max) behind a mutexed map. A span whose name
//!    is computed per call site (per-layer profiling) goes through
//!    [`layer_span`], which skips the `format!` entirely when disabled.
//! 2. **Metrics registry** ([`counter_add`], [`gauge_set`],
//!    [`hist_record`]): named counters, gauges, and bounded-sample
//!    histograms whose percentiles reuse the workspace's single
//!    nearest-rank [`percentile`] implementation.
//! 3. **Events** ([`event`] and the [`info`]/[`warn_event`]/[`debug`]
//!    shorthands): structured JSONL records kept in a bounded in-memory
//!    ring and optionally mirrored to a file sink
//!    (`ANTIDOTE_TRACE=path`) and/or stderr (console sink, gated by
//!    `ANTIDOTE_LOG=off|warn|info|debug`).
//!
//! On top of those, the request-tracing layer (`DESIGN.md` §14) adds:
//! [`TraceId`]s with a per-thread span/counter collector
//! ([`collect_begin`]/[`collect_end`]), a flight recorder retaining
//! slowest-N and errored per-request records ([`record_trace`],
//! [`traces_json`]), rotating 60×1s windows over every counter/gauge/
//! histogram ([`window`], surfaced through [`Snapshot`]), and a
//! Prometheus text-exposition renderer ([`prom`]).
//!
//! Everything is **off by default**. The only cost on a hot path while
//! disabled is one relaxed atomic load ([`enabled`]); `scripts/tier1.sh`
//! smoke-checks that a dense forward pass is unaffected. Enable
//! programmatically with [`set_enabled`] or via `ANTIDOTE_OBS=1` +
//! [`init_from_env`]. Aggregates are read back with [`snapshot`].
//!
//! # Example
//!
//! ```
//! antidote_obs::set_enabled(true);
//! {
//!     let _timer = antidote_obs::span("demo.work");
//!     antidote_obs::counter_add("demo.items", 3);
//! }
//! let snap = antidote_obs::snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert_eq!(snap.span("demo.work").unwrap().count, 1);
//! antidote_obs::set_enabled(false);
//! antidote_obs::reset();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod env;
mod event;
mod json;
mod metrics;
pub mod prom;
mod recorder;
mod span;
mod stats;
mod trace;
pub mod window;

pub use event::{
    debug, drain_events, event, events_dropped, info, set_console_level, set_trace_path,
    warn_event, Level, Value,
};
pub use metrics::{
    counter_add, counter_value, gauge_set, hist_record, reset, snapshot, snapshot_at,
    CounterRates, GaugeRange, HistSnapshot, Snapshot, SpanSnapshot,
};
pub use recorder::{
    clear_recorder, record_trace, recorder_counts, recorder_dump_events, set_recorder_caps,
    traces_json, TraceRecord, TraceSpanRec, DEFAULT_ERROR_CAP, DEFAULT_SLOW_CAP,
};
pub use span::{layer_span, span, SpanGuard, SpanStat};
pub use stats::percentile;
pub use trace::{collect_begin, collect_end, collecting, Collected, CollectedSpan, TraceId};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span/metric collection is enabled.
///
/// A single relaxed atomic load — hot paths check this (directly or via
/// [`span`]) before doing any other observability work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/metric collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Applies the `ANTIDOTE_OBS`, `ANTIDOTE_TRACE`, `ANTIDOTE_LOG`, and
/// `ANTIDOTE_OBS_RECORDER_*` environment knobs (idempotent; subsequent
/// calls are no-ops).
///
/// - `ANTIDOTE_OBS=1|true|on` enables collection ([`set_enabled`]);
/// - `ANTIDOTE_TRACE=path` mirrors events to a JSONL file
///   ([`set_trace_path`]), warn-and-ignore if the file cannot be opened;
/// - `ANTIDOTE_LOG=off|warn|info|debug` sets the console sink threshold
///   (default `warn`), warn-and-ignore on anything else;
/// - `ANTIDOTE_OBS_RECORDER_SLOW` / `ANTIDOTE_OBS_RECORDER_ERRORS`
///   (positive integers) size the flight recorder's slowest-N and
///   errored retention ([`set_recorder_caps`]).
///
/// It also sweeps the environment once for *unrecognized* `ANTIDOTE_*`
/// variables ([`env::warn_unknown`]) so a typo'd knob warns instead of
/// being silently inert.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        env::warn_unknown();
        if let Some(on) = env::flag("ANTIDOTE_OBS") {
            set_enabled(on);
        }
        if let Ok(path) = std::env::var("ANTIDOTE_TRACE") {
            set_trace_path(&path);
        }
        if let Ok(raw) = std::env::var("ANTIDOTE_LOG") {
            match raw.as_str() {
                "off" => set_console_level(None),
                "warn" => set_console_level(Some(Level::Warn)),
                "info" => set_console_level(Some(Level::Info)),
                "debug" => set_console_level(Some(Level::Debug)),
                _ => event::warn_ignored_env("ANTIDOTE_LOG", &raw, "must be off|warn|info|debug"),
            }
        }
        let slow = env::positive::<usize>("ANTIDOTE_OBS_RECORDER_SLOW");
        let errors = env::positive::<usize>("ANTIDOTE_OBS_RECORDER_ERRORS");
        if slow.is_some() || errors.is_some() {
            set_recorder_caps(
                slow.unwrap_or(DEFAULT_SLOW_CAP),
                errors.unwrap_or(DEFAULT_ERROR_CAP),
            );
        }
    });
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that toggle the global enabled flag or read
    /// whole-registry snapshots.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _guard = test_lock::hold();
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
