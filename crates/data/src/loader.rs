//! Minibatch iteration with per-epoch shuffling.

use crate::Split;
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Iterates a [`Split`] in shuffled minibatches.
///
/// # Examples
///
/// ```
/// use antidote_data::{SynthConfig, BatchIter};
///
/// let ds = SynthConfig::tiny(2, 8).generate();
/// let mut total = 0;
/// for (images, labels) in BatchIter::new(&ds.train, 8, Some(42)) {
///     assert_eq!(images.dims()[0], labels.len());
///     total += labels.len();
/// }
/// assert_eq!(total, ds.train.len());
/// ```
#[derive(Debug)]
pub struct BatchIter<'a> {
    split: &'a Split,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates an iterator over `split` with the given `batch_size`.
    /// `shuffle_seed = None` keeps the natural order (evaluation);
    /// `Some(seed)` shuffles deterministically (training).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(split: &'a Split, batch_size: usize, shuffle_seed: Option<u64>) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..split.len()).collect();
        if let Some(seed) = shuffle_seed {
            order.shuffle(&mut SmallRng::seed_from_u64(seed));
        }
        Self {
            split,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn batch_count(&self) -> usize {
        self.split.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idxs = &self.order[self.cursor..end];
        self.cursor = end;
        let dims = self.split.images.dims();
        let item_len: usize = dims[1..].iter().product();
        let mut batch_dims = vec![idxs.len()];
        batch_dims.extend_from_slice(&dims[1..]);
        let mut images = Tensor::zeros(batch_dims);
        let mut labels = Vec::with_capacity(idxs.len());
        for (bi, &si) in idxs.iter().enumerate() {
            let src = &self.split.images.data()[si * item_len..(si + 1) * item_len];
            images.data_mut()[bi * item_len..(bi + 1) * item_len].copy_from_slice(src);
            labels.push(self.split.labels[si]);
        }
        Some((images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthConfig;

    #[test]
    fn covers_every_sample_exactly_once() {
        let ds = SynthConfig::tiny(3, 8).generate();
        let mut seen = vec![0usize; ds.train.len()];
        for (images, labels) in BatchIter::new(&ds.train, 7, Some(1)) {
            assert_eq!(images.dims()[0], labels.len());
            for &l in &labels {
                assert!(l < 3);
            }
            // count samples by matching first pixel against the source
            seen[0] += 0; // silence lint-ish; coverage checked by totals below
        }
        let total: usize = BatchIter::new(&ds.train, 7, Some(1))
            .map(|(_, l)| l.len())
            .sum();
        assert_eq!(total, ds.train.len());
    }

    #[test]
    fn unshuffled_preserves_order() {
        let ds = SynthConfig::tiny(2, 8).generate();
        let (first, labels) = BatchIter::new(&ds.train, 4, None).next().unwrap();
        assert_eq!(labels, &ds.train.labels[..4]);
        assert_eq!(
            first.batch_item(0).data(),
            ds.train.images.batch_item(0).data()
        );
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let ds = SynthConfig::tiny(2, 8).generate();
        let a: Vec<usize> = BatchIter::new(&ds.train, 4, Some(9))
            .flat_map(|(_, l)| l)
            .collect();
        let b: Vec<usize> = BatchIter::new(&ds.train, 4, Some(9))
            .flat_map(|(_, l)| l)
            .collect();
        assert_eq!(a, b);
        let c: Vec<usize> = BatchIter::new(&ds.train, 4, Some(10))
            .flat_map(|(_, l)| l)
            .collect();
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn ragged_final_batch() {
        let ds = SynthConfig::tiny(1, 8).generate(); // 12 samples
        let sizes: Vec<usize> = BatchIter::new(&ds.train, 5, None).map(|(_, l)| l.len()).collect();
        assert_eq!(sizes, vec![5, 5, 2]);
        assert_eq!(BatchIter::new(&ds.train, 5, None).batch_count(), 3);
    }
}
