//! # antidote-data
//!
//! Synthetic vision datasets for the AntiDote (DATE 2020) reproduction.
//!
//! Real CIFAR10/100 and ImageNet100 are not available in this offline
//! environment, so this crate generates *procedural class-conditional
//! images* with per-sample jitter — the documented substitution in
//! `DESIGN.md` §2. The generator is deliberately designed so that the
//! phenomenon AntiDote exploits (per-input variance of feature-map
//! component significance) is present and measurable.
//!
//! # Example
//!
//! ```
//! use antidote_data::{SynthConfig, BatchIter, Augmentation};
//!
//! let ds = SynthConfig::tiny(4, 16).generate();
//! let mut aug = Augmentation::paper_default(16, 0);
//! for (images, labels) in BatchIter::new(&ds.train, 16, Some(0)) {
//!     let images = aug.apply(&images);
//!     assert_eq!(images.dims()[0], labels.len());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod loader;
mod synth;

pub use augment::Augmentation;
pub use loader::BatchIter;
pub use synth::{Split, SynthConfig, SynthDataset};
