//! Training-time data augmentation.
//!
//! The paper uses "random horizontal flip, random crop and 4-pixel
//! padding" on CIFAR; [`Augmentation`] implements exactly that pipeline
//! (with the pad size scaled to the image).

use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random horizontal flip + pad-and-random-crop augmentation.
///
/// # Examples
///
/// ```
/// use antidote_data::Augmentation;
/// use antidote_tensor::Tensor;
///
/// let mut aug = Augmentation::paper_default(32, 0);
/// let batch = Tensor::zeros([4, 3, 32, 32]);
/// let out = aug.apply(&batch);
/// assert_eq!(out.dims(), batch.dims());
/// ```
#[derive(Debug)]
pub struct Augmentation {
    pad: usize,
    flip_probability: f32,
    rng: SmallRng,
}

impl Augmentation {
    /// The paper's CIFAR pipeline: 4-pixel padding (scaled as
    /// `image_size / 8`), random crop, 50 % horizontal flip.
    pub fn paper_default(image_size: usize, seed: u64) -> Self {
        Self {
            pad: (image_size / 8).max(1),
            flip_probability: 0.5,
            rng: SmallRng::seed_from_u64(seed ^ 0xA06),
        }
    }

    /// Custom pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= flip_probability <= 1.0`.
    pub fn new(pad: usize, flip_probability: f32, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability must be in [0, 1]"
        );
        Self {
            pad,
            flip_probability,
            rng: SmallRng::seed_from_u64(seed ^ 0xA06),
        }
    }

    /// Applies an independent random flip + shifted crop to every item of
    /// an `(N, C, H, W)` batch, returning a same-shape batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is not rank 4.
    pub fn apply(&mut self, batch: &Tensor) -> Tensor {
        let (n, c, h, w) = batch.shape().as_nchw().expect("augment expects NCHW");
        let mut out = Tensor::zeros([n, c, h, w]);
        let pad = self.pad as isize;
        for ni in 0..n {
            let flip = self.rng.gen::<f32>() < self.flip_probability;
            // Shift in [-pad, +pad]: equivalent to pad-then-random-crop.
            let dy = self.rng.gen_range(-pad..=pad);
            let dx = self.rng.gen_range(-pad..=pad);
            for ci in 0..c {
                let src_base = (ni * c + ci) * h * w;
                let dst_base = src_base;
                for y in 0..h as isize {
                    let sy = y + dy;
                    for x in 0..w as isize {
                        let sx_raw = x + dx;
                        let sx = if flip { w as isize - 1 - sx_raw } else { sx_raw };
                        let v = if sy < 0 || sy >= h as isize || sx < 0 || sx >= w as isize {
                            0.0
                        } else {
                            batch.data()[src_base + (sy * w as isize + sx) as usize]
                        };
                        out.data_mut()[dst_base + (y * w as isize + x) as usize] = v;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape() {
        let mut aug = Augmentation::paper_default(16, 1);
        let b = Tensor::from_fn([2, 3, 16, 16], |i| i as f32);
        assert_eq!(aug.apply(&b).dims(), b.dims());
    }

    #[test]
    fn no_pad_no_flip_is_identity() {
        let mut aug = Augmentation::new(0, 0.0, 1);
        let b = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        assert_eq!(aug.apply(&b).data(), b.data());
    }

    #[test]
    fn always_flip_mirrors_columns() {
        let mut aug = Augmentation::new(0, 1.0, 1);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 1, 4]).unwrap();
        assert_eq!(aug.apply(&b).data(), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn shifts_stay_within_pad_budget() {
        // With pad=1, total pixel mass can change only via border loss.
        let mut aug = Augmentation::new(1, 0.0, 3);
        let b = Tensor::ones([1, 1, 8, 8]);
        for _ in 0..20 {
            let out = aug.apply(&b);
            let lost = 64.0 - out.sum();
            assert!((0.0..=15.0).contains(&lost), "lost={lost}");
        }
    }

    #[test]
    fn per_item_randomness_differs() {
        let mut aug = Augmentation::paper_default(8, 5);
        let b = Tensor::from_fn([8, 1, 8, 8], |i| (i % 64) as f32);
        let out = aug.apply(&b);
        // At least two items must have been transformed differently.
        let mut distinct = false;
        for i in 1..8 {
            if out.batch_item(i).data() != out.batch_item(0).data() {
                distinct = true;
            }
        }
        assert!(distinct);
    }
}
