//! Procedural class-conditional image generator.
//!
//! This is the repo's documented substitution for CIFAR10/100 and
//! ImageNet100 (see `DESIGN.md` §2): each class owns a small set of
//! oriented Gabor-like blobs; every sample renders those blobs with
//! per-sample jitter (position, phase, amplitude) plus pixel noise.
//!
//! Two properties matter for faithfully exercising AntiDote:
//!
//! 1. **Learnability** — class structure is stable enough for a small CNN
//!    to reach high accuracy in CPU-minutes;
//! 2. **Per-input activation variance** — the jitter moves class energy
//!    across spatial positions and feature channels *per image*, which is
//!    precisely the dynamic redundancy (Sec. I of the paper) that
//!    attention-based dynamic pruning exploits and static pruning cannot.

use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic vision dataset.
///
/// # Examples
///
/// ```
/// use antidote_data::SynthConfig;
///
/// let cfg = SynthConfig::tiny(4, 8);
/// let ds = cfg.generate();
/// assert_eq!(ds.train.len(), cfg.train_per_class * 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Image channels (3 for the CIFAR/ImageNet stand-ins).
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Spatial jitter amplitude as a fraction of the image size.
    pub jitter: f32,
    /// Blobs per class prototype.
    pub blobs_per_class: usize,
    /// RNG seed (prototypes and samples derive from it).
    pub seed: u64,
}

impl SynthConfig {
    /// CIFAR10 stand-in: 10 classes of 3×32×32 images.
    pub fn synth_cifar10() -> Self {
        Self {
            classes: 10,
            image_size: 32,
            channels: 3,
            train_per_class: 64,
            test_per_class: 16,
            noise: 0.15,
            jitter: 0.15,
            blobs_per_class: 4,
            seed: 0xC1FA_0010,
        }
    }

    /// CIFAR100 stand-in: 100 classes of 3×32×32 images (fewer samples
    /// per class, like the real dataset's 500 vs 5000).
    pub fn synth_cifar100() -> Self {
        Self {
            classes: 100,
            image_size: 32,
            channels: 3,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.12,
            jitter: 0.12,
            blobs_per_class: 4,
            seed: 0xC1FA_0100,
        }
    }

    /// ImageNet100 stand-in: larger 3×64×64 images so the feature maps
    /// carry the spatial redundancy the paper reports on ImageNet.
    pub fn synth_imagenet100() -> Self {
        Self {
            classes: 100,
            image_size: 64,
            channels: 3,
            train_per_class: 8,
            test_per_class: 2,
            noise: 0.1,
            jitter: 0.2,
            blobs_per_class: 5,
            seed: 0x11A6_E001,
        }
    }

    /// Minimal config for unit tests: `classes` classes of
    /// 3×`size`×`size` images, a handful of samples each.
    pub fn tiny(classes: usize, size: usize) -> Self {
        Self {
            classes,
            image_size: size,
            channels: 3,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.05,
            jitter: 0.1,
            blobs_per_class: 2,
            seed: 7,
        }
    }

    /// Scales the number of samples per class by `factor` (used by the
    /// bench harness to trade fidelity for wall-clock).
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset (train + test splits).
    pub fn generate(&self) -> SynthDataset {
        assert!(self.classes > 0, "need at least one class");
        assert!(self.image_size >= 4, "image size must be >= 4");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let prototypes: Vec<ClassPrototype> = (0..self.classes)
            .map(|_| ClassPrototype::sample(&mut rng, self))
            .collect();
        let train = self.render_split(&prototypes, self.train_per_class, &mut rng);
        let test = self.render_split(&prototypes, self.test_per_class, &mut rng);
        SynthDataset {
            config: self.clone(),
            train,
            test,
        }
    }

    fn render_split(
        &self,
        prototypes: &[ClassPrototype],
        per_class: usize,
        rng: &mut SmallRng,
    ) -> Split {
        let n = per_class * self.classes;
        let (c, s) = (self.channels, self.image_size);
        let mut images = Tensor::zeros([n, c, s, s]);
        let mut labels = Vec::with_capacity(n);
        let mut idx = 0;
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let item = &mut images.data_mut()[idx * c * s * s..(idx + 1) * c * s * s];
                proto.render(rng, self, item);
                labels.push(class);
                idx += 1;
            }
        }
        Split { images, labels }
    }
}

/// One oriented Gabor-like blob of a class prototype.
#[derive(Debug, Clone)]
struct Blob {
    cx: f32,
    cy: f32,
    sigma: f32,
    freq: f32,
    theta: f32,
    /// Per-channel amplitudes — gives each class a channel signature.
    channel_amp: Vec<f32>,
}

/// The fixed per-class generative structure.
#[derive(Debug, Clone)]
struct ClassPrototype {
    blobs: Vec<Blob>,
}

impl ClassPrototype {
    fn sample(rng: &mut SmallRng, cfg: &SynthConfig) -> Self {
        let blobs = (0..cfg.blobs_per_class)
            .map(|_| Blob {
                cx: rng.gen_range(0.2..0.8),
                cy: rng.gen_range(0.2..0.8),
                sigma: rng.gen_range(0.08..0.25),
                freq: rng.gen_range(2.0..8.0),
                theta: rng.gen_range(0.0..std::f32::consts::PI),
                channel_amp: (0..cfg.channels).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            })
            .collect();
        Self { blobs }
    }

    /// Renders one sample with jitter and noise into `out`
    /// (`channels * size * size`, row-major).
    fn render(&self, rng: &mut SmallRng, cfg: &SynthConfig, out: &mut [f32]) {
        let s = cfg.image_size;
        let sf = s as f32;
        out.fill(0.0);
        for blob in &self.blobs {
            // Per-sample jitter: this is what makes component significance
            // input-dependent.
            let jx = rng.gen_range(-cfg.jitter..cfg.jitter);
            let jy = rng.gen_range(-cfg.jitter..cfg.jitter);
            let phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp_scale = rng.gen_range(0.7..1.3);
            let (cx, cy) = ((blob.cx + jx) * sf, (blob.cy + jy) * sf);
            let inv_two_sigma_sq = 1.0 / (2.0 * (blob.sigma * sf).powi(2));
            let (dir_x, dir_y) = (blob.theta.cos(), blob.theta.sin());
            let k = blob.freq / sf * std::f32::consts::TAU;
            for y in 0..s {
                for x in 0..s {
                    let (dx, dy) = (x as f32 - cx, y as f32 - cy);
                    let envelope = (-(dx * dx + dy * dy) * inv_two_sigma_sq).exp();
                    if envelope < 1e-3 {
                        continue;
                    }
                    let carrier = (k * (dx * dir_x + dy * dir_y) + phase).cos();
                    let v = amp_scale * envelope * carrier;
                    for (ci, &a) in blob.channel_amp.iter().enumerate() {
                        out[(ci * s + y) * s + x] += a * v;
                    }
                }
            }
        }
        if cfg.noise > 0.0 {
            for v in out.iter_mut() {
                // cheap uniform noise with matched std
                *v += rng.gen_range(-1.732..1.732f32) * cfg.noise;
            }
        }
    }
}

/// One split (train or test) of a generated dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Images, `(N, C, S, S)`.
    pub images: Tensor,
    /// Integer labels, length `N`.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A generated dataset: configuration plus train/test splits.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The generating configuration.
    pub config: SynthConfig,
    /// Training split.
    pub train: Split,
    /// Held-out test split.
    pub test: Split,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let cfg = SynthConfig::tiny(3, 8);
        let ds = cfg.generate();
        assert_eq!(ds.train.images.dims(), &[36, 3, 8, 8]);
        assert_eq!(ds.train.labels.len(), 36);
        assert_eq!(ds.test.labels.len(), 12);
        // Labels are class-balanced and ordered by class.
        assert_eq!(ds.train.labels[0], 0);
        assert_eq!(ds.train.labels[35], 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SynthConfig::tiny(2, 8).generate();
        let b = SynthConfig::tiny(2, 8).generate();
        assert_eq!(a.train.images.data(), b.train.images.data());
        let c = SynthConfig::tiny(2, 8).with_seed(99).generate();
        assert_ne!(a.train.images.data(), c.train.images.data());
    }

    #[test]
    fn samples_of_same_class_differ() {
        // Jitter must create per-input variance.
        let ds = SynthConfig::tiny(1, 16).generate();
        let a = ds.train.images.batch_item(0);
        let b = ds.train.images.batch_item(1);
        assert!(!a.allclose(&b, 1e-3));
    }

    #[test]
    fn classes_are_distinguishable_by_energy_profile() {
        // Mean absolute per-class images should differ a lot more across
        // classes than samples differ within a class.
        let cfg = SynthConfig::tiny(2, 16).with_samples(20, 2);
        let ds = cfg.generate();
        let n_per = 20;
        let item_len = 3 * 16 * 16;
        let mean_image = |class: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; item_len];
            for i in 0..n_per {
                let img = ds.train.images.batch_item(class * n_per + i);
                for (a, &v) in acc.iter_mut().zip(img.data()) {
                    *a += v / n_per as f32;
                }
            }
            acc
        };
        let m0 = mean_image(0);
        let m1 = mean_image(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn presets_have_expected_geometry() {
        assert_eq!(SynthConfig::synth_cifar10().image_size, 32);
        assert_eq!(SynthConfig::synth_cifar10().classes, 10);
        assert_eq!(SynthConfig::synth_cifar100().classes, 100);
        assert_eq!(SynthConfig::synth_imagenet100().image_size, 64);
    }

    #[test]
    fn pixel_values_bounded() {
        let ds = SynthConfig::tiny(2, 8).generate();
        assert!(ds.train.images.max() < 10.0);
        assert!(ds.train.images.min() > -10.0);
    }
}
