//! Pins `docs/FORMAT.md` — the normative byte-level spec — to the
//! source constants. The document is included at compile time, so the
//! spec and the implementation cannot drift silently: changing a
//! constant in `container.rs` (or editing the number in the spec)
//! fails this suite until both agree again.

use antidote_modelfile::container::MAX_KV_STR_LEN;
use antidote_modelfile::{
    Dtype, KvValue, ALIGNMENT, FORMAT_VERSION, HEADER_LEN, KV_CALIBRATION, KV_CONFIG, KV_DTYPE,
    KV_FAMILY, KV_PROVENANCE_ARCH, KV_PROVENANCE_CHECKSUM, KV_QUANT_SCHEME, MAGIC, MAX_COUNT,
    MAX_NAME_LEN, MAX_RANK, QUANT_SCHEME,
};

const SPEC: &str = include_str!("../../../docs/FORMAT.md");

/// The spec must state `needle` verbatim; `what` names the claim.
fn pinned(needle: &str, what: &str) {
    assert!(
        SPEC.contains(needle),
        "docs/FORMAT.md no longer states {what}: expected the exact text {needle:?}"
    );
}

#[test]
fn spec_pins_header_constants() {
    assert_eq!(MAGIC, *b"ADMF");
    pinned("`ADMF`", "the magic bytes");
    assert_eq!(FORMAT_VERSION, 1);
    pinned("MUST be `1`", "the format version");
    assert_eq!(ALIGNMENT, 64);
    pinned("MUST be `64`", "the payload alignment");
    assert_eq!(HEADER_LEN, 32);
    pinned("`HEADER_LEN` is 32", "the fixed header length");
    pinned("# The `.adm` model file format, version 1", "the versioned title");
}

#[test]
fn spec_pins_size_limits() {
    assert_eq!(MAX_NAME_LEN, 1024);
    pinned("| `MAX_NAME_LEN` | 1024 |", "the name length cap");
    assert_eq!(MAX_KV_STR_LEN, 1 << 20);
    pinned("| `MAX_KV_STR_LEN` | 1048576 |", "the KV string cap");
    assert_eq!(MAX_RANK, 8);
    pinned("| `MAX_RANK` | 8 |", "the rank cap");
    assert_eq!(MAX_COUNT, 65_536);
    pinned("| `MAX_COUNT` | 65536 |", "the count cap");
}

#[test]
fn spec_pins_dtype_tags() {
    assert_eq!(Dtype::F32.tag(), 0);
    pinned("| 0 | f32 |", "the f32 dtype tag");
    assert_eq!(Dtype::I8.tag(), 1);
    pinned("| 1 | i8 |", "the i8 dtype tag");
    // The tag space the spec documents is exactly the tag space the
    // code knows: 0 and 1 decode, everything else is an error.
    assert_eq!(Dtype::from_tag(0), Some(Dtype::F32));
    assert_eq!(Dtype::from_tag(1), Some(Dtype::I8));
    for tag in 2..=u8::MAX {
        assert_eq!(Dtype::from_tag(tag), None, "undocumented tag {tag} decodes");
    }
}

#[test]
fn spec_pins_kv_value_tags() {
    pinned("| 0 | Str |", "the Str KV tag");
    pinned("| 1 | U64 |", "the U64 KV tag");
    pinned("| 2 | F64 |", "the F64 KV tag");
    pinned("| 3 | Bool |", "the Bool KV tag");
    // The spec's tag table mirrors the on-disk encoding order of the
    // KvValue variants; a round trip through the builder pins it.
    use antidote_modelfile::{Container, ContainerBuilder};
    let mut b = ContainerBuilder::new();
    b.kv("k", KvValue::Str("v".into()));
    let bytes = b.to_bytes();
    // First KV entry: key_len(4) + "k"(1) at HEADER_LEN, tag next.
    assert_eq!(bytes[HEADER_LEN + 5], 0, "Str must serialize as tag 0");
    let c = Container::from_bytes(bytes).unwrap();
    assert_eq!(c.kv_str("k"), Some("v"));
}

#[test]
fn spec_pins_metadata_keys() {
    for (key, what) in [
        (KV_FAMILY, "the family key"),
        (KV_DTYPE, "the dtype key"),
        (KV_CONFIG, "the config key"),
        (KV_CALIBRATION, "the calibration key"),
        (KV_QUANT_SCHEME, "the quant-scheme key"),
        (KV_PROVENANCE_ARCH, "the provenance-architecture key"),
        (KV_PROVENANCE_CHECKSUM, "the provenance-checksum key"),
    ] {
        pinned(&format!("`{key}`"), what);
    }
    pinned(&format!("`{QUANT_SCHEME}`"), "the quantization scheme name");
}

#[test]
fn spec_pins_checksum_algorithm() {
    pinned("0xcbf29ce484222325", "the FNV-1a offset basis");
    pinned("0x100000001b3", "the FNV-1a prime");
    // And the stated constants are the ones the implementation uses:
    // FNV-1a of the empty input is the offset basis.
    assert_eq!(antidote_modelfile::fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
}

#[test]
fn spec_pins_tensor_name_schemas() {
    for (needle, what) in [
        ("`param.NNNN`", "the fp32 parameter naming"),
        ("`conv.{i}.qweight`", "the int8 conv weight naming"),
        ("`quant.act_scales`", "the activation-scales tensor"),
        ("`linear.weight`", "the classifier head naming"),
    ] {
        pinned(needle, what);
    }
}
