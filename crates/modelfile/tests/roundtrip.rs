//! Artifact-level round trips: a network saved to `.adm` and loaded
//! back must produce **bit-identical logits** to the source network,
//! for both dtypes, and the container layer must round-trip arbitrary
//! payload bits exactly (`to_bits` equality, not approximate).

use antidote_core::checkpoint::Checkpoint;
use antidote_core::quant::CalibrationMethod;
use antidote_modelfile::{Container, ContainerBuilder, ModelArtifact, ModelDtype};
use antidote_models::{Network, Vgg, VggConfig};
use antidote_nn::Mode;
use antidote_tensor::Tensor;
use proptest::collection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adm_{name}_{}.adm", std::process::id()))
}

/// A deterministic probe batch exercising positive and negative values.
fn probe_input(config: &VggConfig) -> Tensor {
    let s = config.input_size;
    let n = 3 * s * s;
    let vals: Vec<f32> = (0..n)
        .map(|i| ((i * 37 + 11) % 97) as f32 / 48.5 - 1.0)
        .collect();
    Tensor::from_vec(vals, &[1, 3, s, s]).unwrap()
}

fn logits_bits(net: &mut dyn Network, input: &Tensor) -> Vec<u32> {
    net.forward(input, Mode::Eval)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn trained_like_artifact() -> (Vgg, ModelArtifact) {
    let config = VggConfig::vgg_tiny(8, 4);
    let mut net = Vgg::new(&mut SmallRng::seed_from_u64(42), config.clone());
    let ckpt = Checkpoint::capture(&mut net).with_vgg_config(config);
    let artifact = ModelArtifact::from_checkpoint(&ckpt, None).unwrap();
    (net, artifact)
}

#[test]
fn fp32_save_load_serves_bit_identical_logits() {
    let (mut source, artifact) = trained_like_artifact();
    let path = tmp_path("fp32_roundtrip");
    artifact.save(&path).unwrap();

    let loaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(loaded.dtype(), ModelDtype::F32);
    assert_eq!(loaded.config(), artifact.config());

    let input = probe_input(loaded.config());
    let want = logits_bits(&mut source, &input);
    // Factories build per replica; every replica must agree bit-exactly.
    for _ in 0..2 {
        let mut replica = loaded.build_network();
        assert_eq!(logits_bits(replica.as_mut(), &input), want);
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn int8_save_load_serves_bit_identical_logits() {
    let (_, fp32) = trained_like_artifact();
    let int8 = fp32
        .quantize(CalibrationMethod::Percentile(99.9), 8, 2, 7)
        .unwrap();
    assert_eq!(int8.dtype(), ModelDtype::Int8);

    let path = tmp_path("int8_roundtrip");
    int8.save(&path).unwrap();
    let loaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(loaded.dtype(), ModelDtype::Int8);

    let input = probe_input(loaded.config());
    let mut exported = int8.build_network();
    let mut from_file = loaded.build_network();
    assert_eq!(
        logits_bits(from_file.as_mut(), &input),
        logits_bits(exported.as_mut(), &input),
        "int8 logits must survive the file round trip bit-exactly"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn provenance_metadata_survives_quantize_and_round_trip() {
    let (_, fp32) = trained_like_artifact();
    let int8 = fp32.quantize(CalibrationMethod::MinMax, 8, 1, 0).unwrap();
    let path = tmp_path("metadata");
    int8.save(&path).unwrap();
    let loaded = ModelArtifact::load(&path).unwrap();

    let keys: Vec<&str> = loaded.metadata().iter().map(|(k, _)| k.as_str()).collect();
    for expected in [
        antidote_modelfile::KV_PROVENANCE_ARCH,
        antidote_modelfile::KV_PROVENANCE_CHECKSUM,
        antidote_modelfile::KV_CALIBRATION,
        antidote_modelfile::KV_QUANT_SCHEME,
    ] {
        assert!(keys.contains(&expected), "lost {expected}: {keys:?}");
    }
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn container_round_trips_f32_bits_exactly(
        // Arbitrary *bit patterns* (including NaNs and infinities —
        // the container stores bits, not numbers).
        bits in collection::vec(0u32..=u32::MAX, 1usize..=64),
    ) {
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut b = ContainerBuilder::new();
        b.tensor_f32("t", &[values.len()], &values);
        let c = Container::from_bytes(b.to_bytes()).unwrap();
        let back = c.f32_values(c.tensor("t").unwrap()).unwrap();
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, bits);
    }

    #[test]
    fn container_round_trips_i8_and_scales_exactly(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..=u64::MAX,
        scale_bits in collection::vec(0u32..=u32::MAX, 6usize),
    ) {
        let mut s = seed | 1;
        let data: Vec<i8> = (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 56) as i8
            })
            .collect();
        let scales: Vec<f32> = scale_bits[..rows].iter().map(|&b| f32::from_bits(b)).collect();

        let mut b = ContainerBuilder::new();
        b.tensor_i8("q", rows, cols, &data, &scales);
        let c = Container::from_bytes(b.to_bytes()).unwrap();
        let (data_back, scales_back) = c.i8_values(c.tensor("q").unwrap()).unwrap();
        prop_assert_eq!(data_back, data);
        let want: Vec<u32> = scales.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = scales_back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }
}
