//! Hostile-file corpus: every malformed `.adm` image must come back as
//! a typed [`ModelFileError`] — never a panic, never a silently garbled
//! model. Each case starts from a valid image and corrupts one field at
//! a byte offset pinned by the `docs/FORMAT.md` layout.

use antidote_modelfile::{
    Container, ContainerBuilder, KvValue, ModelArtifact, ModelFileError, HEADER_LEN,
};

/// A valid image with no KVs and one f32 tensor named `w` (dims `[2,
/// 3]`). With a 1-byte name the index layout after the 32-byte header
/// is fixed, so corruption offsets below are exact:
///
/// ```text
/// 32  name_len u32     36  name "w"        37  dtype u8
/// 38  rank u8          39  dims 2×u64      55  offset u64
/// 63  nbytes u64       71  checksum u64
/// ```
fn one_tensor_image() -> Vec<u8> {
    let mut b = ContainerBuilder::new();
    b.tensor_f32("w", &[2, 3], &[1.0, -2.0, 3.5, 0.0, 5.25, -6.125]);
    b.to_bytes()
}

const DTYPE_AT: usize = 37;
const RANK_AT: usize = 38;
const OFFSET_AT: usize = 55;

#[test]
fn truncated_header_is_typed() {
    let image = one_tensor_image();
    for len in 0..HEADER_LEN {
        match Container::from_bytes(image[..len].to_vec()) {
            Err(ModelFileError::Truncated { .. }) => {}
            // Prefixes ≥ 4 bytes carry the real magic; shorter ones
            // still fail on the magic read itself.
            other => panic!("prefix of {len} bytes: {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut image = one_tensor_image();
    image[..4].copy_from_slice(b"JSON");
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::BadMagic { found }) if found == *b"JSON"
    ));
}

#[test]
fn wrong_version_is_typed() {
    let mut image = one_tensor_image();
    image[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::VersionMismatch {
            found: 99,
            expected: 1
        })
    ));
}

#[test]
fn wrong_alignment_is_typed() {
    let mut image = one_tensor_image();
    image[8..12].copy_from_slice(&8u32.to_le_bytes());
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::BadAlignment {
            declared: 8,
            expected: 64
        })
    ));
}

#[test]
fn misaligned_tensor_offset_is_typed() {
    let mut image = one_tensor_image();
    image[OFFSET_AT..OFFSET_AT + 8].copy_from_slice(&1u64.to_le_bytes());
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::MisalignedOffset { offset: 1, .. })
    ));
}

#[test]
fn flipped_payload_byte_fails_checksum() {
    let mut image = one_tensor_image();
    let last = image.len() - 1;
    image[last] ^= 0xff;
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::ChecksumMismatch { .. })
    ));
}

#[test]
fn flipped_stored_checksum_fails_checksum() {
    let mut image = one_tensor_image();
    image[71] ^= 0xff;
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::ChecksumMismatch { .. })
    ));
}

#[test]
fn unknown_dtype_tag_is_typed() {
    let mut image = one_tensor_image();
    image[DTYPE_AT] = 7;
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::UnknownDtype { tag: 7, .. })
    ));
}

#[test]
fn zero_and_oversized_rank_are_typed() {
    for rank in [0u8, 9u8] {
        let mut image = one_tensor_image();
        image[RANK_AT] = rank;
        assert!(matches!(
            Container::from_bytes(image),
            Err(ModelFileError::Malformed(_))
        ));
    }
}

#[test]
fn tensor_past_data_section_is_oversized() {
    let mut image = one_tensor_image();
    // Aligned (so it passes the alignment check) but far past the end.
    image[OFFSET_AT..OFFSET_AT + 8].copy_from_slice(&(64u64 * 1000).to_le_bytes());
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::Oversized { .. })
    ));
}

#[test]
fn oversized_name_is_typed() {
    let mut image = one_tensor_image();
    image[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::Oversized { .. })
    ));
}

#[test]
fn unknown_kv_value_tag_is_typed() {
    let mut b = ContainerBuilder::new();
    b.kv("k", KvValue::Bool(true));
    let mut image = b.to_bytes();
    // KV section: key_len u32 at 32, "k" at 36, value tag at 37.
    image[37] = 9;
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::UnknownKvTag { tag: 9, .. })
    ));
}

#[test]
fn truncated_data_section_is_typed() {
    let mut image = one_tensor_image();
    image.truncate(image.len() - 3);
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::Truncated { .. })
    ));
}

#[test]
fn nonzero_header_padding_is_rejected() {
    let mut image = one_tensor_image();
    // Byte 79 is inside the zero pad between the index (ends at 79) and
    // the 128-aligned data section.
    image[79] = 1;
    assert!(matches!(
        Container::from_bytes(image),
        Err(ModelFileError::Truncated { .. })
    ));
}

#[test]
fn every_single_byte_corruption_is_err_or_detected() {
    // Sledgehammer: flip each byte of the image in turn. The parser
    // must either reject the image with a typed error or — only where
    // the flip lands in genuinely free bytes (none here: every byte of
    // this image is load-bearing except the reserved header word) —
    // return an equivalent container. It must never panic.
    let image = one_tensor_image();
    for i in 0..image.len() {
        let mut corrupt = image.clone();
        corrupt[i] ^= 0xff;
        let result = Container::from_bytes(corrupt);
        if (20..24).contains(&i) {
            // The reserved header word is ignored by design.
            assert!(result.is_ok(), "reserved byte {i} should be ignored");
        } else {
            assert!(result.is_err(), "flipping byte {i} went undetected");
        }
    }
}

#[test]
fn valid_container_that_is_no_model_is_bad_model() {
    let path = std::env::temp_dir().join(format!("adm_no_model_{}.adm", std::process::id()));
    let mut b = ContainerBuilder::new();
    b.kv("model.family", KvValue::Str("vgg".into()));
    b.write(&path).unwrap();
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ModelFileError::BadModel(_))
    ));
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_kv_keys_are_ignored_for_forward_compat() {
    let mut b = ContainerBuilder::new();
    b.kv("future.knob", KvValue::U64(3))
        .tensor_f32("w", &[1], &[1.0]);
    let c = Container::from_bytes(b.to_bytes()).unwrap();
    assert_eq!(c.kv("future.knob"), Some(&KvValue::U64(3)));
}
