//! The typed error surface of the model-file layer.

use std::error::Error;
use std::fmt;

/// Every way reading, validating, or interpreting an `.adm` file can
/// fail. Hostile bytes always map to one of these variants — the
/// loaders never panic and never return silently garbled weights.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelFileError {
    /// The file could not be read or written.
    Io(String),
    /// The first four bytes are not the `ADMF` magic.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header declares a format version this build does not speak.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The header declares an alignment other than the spec's.
    BadAlignment {
        /// Alignment found in the file.
        declared: u32,
        /// Alignment the spec requires.
        expected: u32,
    },
    /// The file ends before a declared structure does.
    Truncated {
        /// What was being parsed.
        what: String,
        /// Byte offset where parsing stopped.
        offset: u64,
    },
    /// A tensor payload offset is not a multiple of the alignment.
    MisalignedOffset {
        /// Offending tensor.
        tensor: String,
        /// Its declared offset.
        offset: u64,
    },
    /// A tensor payload does not hash to its stored checksum.
    ChecksumMismatch {
        /// Offending tensor.
        tensor: String,
        /// Checksum recorded in the index.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// A tensor declares a dtype tag this build does not know.
    UnknownDtype {
        /// Offending tensor.
        tensor: String,
        /// The unknown tag byte.
        tag: u8,
    },
    /// A metadata entry declares a value-type tag this build does not
    /// know (unknown *keys* are fine; unknown value types cannot be
    /// skipped because their length is unknowable).
    UnknownKvTag {
        /// The entry's key.
        key: String,
        /// The unknown tag byte.
        tag: u8,
    },
    /// A declared size exceeds what the file (or a spec cap) allows.
    Oversized {
        /// What was being parsed.
        what: String,
        /// The declared size.
        declared: u64,
        /// The applicable limit.
        limit: u64,
    },
    /// Structurally invalid in some other way (bad UTF-8, zero rank,
    /// dims/byte-count disagreement, duplicate names, ...).
    Malformed(String),
    /// The container parsed, but its contents do not form a loadable
    /// model (missing metadata, shape mismatches against the config,
    /// non-finite values, unknown architecture family, ...).
    BadModel(String),
}

impl fmt::Display for ModelFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFileError::Io(msg) => write!(f, "model file i/o: {msg}"),
            ModelFileError::BadMagic { found } => {
                write!(f, "not a model file: magic {found:02x?}")
            }
            ModelFileError::VersionMismatch { found, expected } => {
                write!(f, "model file format version {found} (expected {expected})")
            }
            ModelFileError::BadAlignment { declared, expected } => {
                write!(f, "model file alignment {declared} (expected {expected})")
            }
            ModelFileError::Truncated { what, offset } => {
                write!(f, "model file truncated at byte {offset} while reading {what}")
            }
            ModelFileError::MisalignedOffset { tensor, offset } => {
                write!(f, "tensor {tensor}: offset {offset} is not 64-byte aligned")
            }
            ModelFileError::ChecksumMismatch {
                tensor,
                stored,
                computed,
            } => write!(
                f,
                "tensor {tensor}: checksum mismatch, stored {stored:#018x}, computed {computed:#018x}"
            ),
            ModelFileError::UnknownDtype { tensor, tag } => {
                write!(f, "tensor {tensor}: unknown dtype tag {tag}")
            }
            ModelFileError::UnknownKvTag { key, tag } => {
                write!(f, "metadata {key}: unknown value-type tag {tag}")
            }
            ModelFileError::Oversized {
                what,
                declared,
                limit,
            } => write!(f, "{what}: declares {declared}, limit {limit}"),
            ModelFileError::Malformed(msg) => write!(f, "malformed model file: {msg}"),
            ModelFileError::BadModel(msg) => write!(f, "not a loadable model: {msg}"),
        }
    }
}

impl Error for ModelFileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let cases: Vec<(ModelFileError, &str)> = vec![
            (ModelFileError::Io("gone".into()), "gone"),
            (
                ModelFileError::BadMagic { found: *b"JSON" },
                "magic",
            ),
            (
                ModelFileError::VersionMismatch {
                    found: 9,
                    expected: 1,
                },
                "version 9",
            ),
            (
                ModelFileError::BadAlignment {
                    declared: 8,
                    expected: 64,
                },
                "alignment 8",
            ),
            (
                ModelFileError::Truncated {
                    what: "tensor index".into(),
                    offset: 40,
                },
                "byte 40",
            ),
            (
                ModelFileError::MisalignedOffset {
                    tensor: "w".into(),
                    offset: 12,
                },
                "not 64-byte aligned",
            ),
            (
                ModelFileError::ChecksumMismatch {
                    tensor: "w".into(),
                    stored: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (
                ModelFileError::UnknownDtype {
                    tensor: "w".into(),
                    tag: 7,
                },
                "dtype tag 7",
            ),
            (
                ModelFileError::UnknownKvTag {
                    key: "k".into(),
                    tag: 9,
                },
                "value-type tag 9",
            ),
            (
                ModelFileError::Oversized {
                    what: "tensor w".into(),
                    declared: 100,
                    limit: 10,
                },
                "declares 100",
            ),
            (ModelFileError::Malformed("zero rank".into()), "zero rank"),
            (ModelFileError::BadModel("no config".into()), "no config"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
