//! `convert` — v2 checkpoint → single-file `.adm` model artifact.
//!
//! ```text
//! convert --checkpoint trained.json --out model.adm
//! convert --checkpoint trained.json --out model-int8.adm \
//!         --quantize int8 --calibrate percentile:99.9
//! ```
//!
//! The architecture comes from the checkpoint's embedded `VggConfig`
//! (checkpoints captured with `Checkpoint::with_vgg_config`); older
//! checkpoints need `--config cfg.json` pointing at a serialized
//! `VggConfig`. With `--quantize int8` the fp32 weights are calibrated
//! on synthetic held-out batches and quantized in the same pass
//! (`antidote_core::quant::calibrate`), so training machines can ship
//! deployment-ready int8 artifacts directly.
//!
//! Exit codes: 0 success, 2 bad usage, 1 conversion failure.

use antidote_core::checkpoint::Checkpoint;
use antidote_core::quant::CalibrationMethod;
use antidote_modelfile::ModelArtifact;
use antidote_models::VggConfig;

struct Args {
    checkpoint: String,
    out: String,
    config: Option<String>,
    quantize_int8: bool,
    calibrate: CalibrationMethod,
    calib_batches: usize,
    calib_batch_size: usize,
    calib_seed: u64,
}

const USAGE: &str = "usage: convert --checkpoint <ckpt.json> --out <model.adm> \
[--config <vgg-config.json>] [--quantize int8] [--calibrate minmax|percentile:<pct>] \
[--calib-batches N] [--calib-batch-size N] [--calib-seed S]";

fn parse_args() -> Result<Args, String> {
    let mut checkpoint = None;
    let mut out = None;
    let mut config = None;
    let mut quantize_int8 = false;
    let mut calibrate = CalibrationMethod::MinMax;
    let mut calib_batches = 4usize;
    let mut calib_batch_size = 16usize;
    let mut calib_seed = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
            "--out" => out = Some(value("--out")?),
            "--config" => config = Some(value("--config")?),
            "--quantize" => {
                let v = value("--quantize")?;
                if v != "int8" {
                    return Err(format!("--quantize supports only int8, got {v:?}"));
                }
                quantize_int8 = true;
            }
            "--calibrate" => {
                let v = value("--calibrate")?;
                calibrate = if v == "minmax" {
                    CalibrationMethod::MinMax
                } else if let Some(pct) = v.strip_prefix("percentile:") {
                    let pct: f64 = pct
                        .parse()
                        .map_err(|_| format!("bad percentile {pct:?}"))?;
                    if !(0.0..=100.0).contains(&pct) {
                        return Err(format!("percentile {pct} outside 0..=100"));
                    }
                    CalibrationMethod::Percentile(pct)
                } else {
                    return Err(format!(
                        "--calibrate takes minmax or percentile:<pct>, got {v:?}"
                    ));
                };
            }
            "--calib-batches" => {
                calib_batches = value("--calib-batches")?
                    .parse()
                    .map_err(|_| "--calib-batches needs a positive integer".to_string())?;
            }
            "--calib-batch-size" => {
                calib_batch_size = value("--calib-batch-size")?
                    .parse()
                    .map_err(|_| "--calib-batch-size needs a positive integer".to_string())?;
            }
            "--calib-seed" => {
                calib_seed = value("--calib-seed")?
                    .parse()
                    .map_err(|_| "--calib-seed needs an integer".to_string())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if calib_batches == 0 || calib_batch_size == 0 {
        return Err("calibration batches and batch size must be positive".to_string());
    }
    Ok(Args {
        checkpoint: checkpoint.ok_or_else(|| format!("--checkpoint is required\n{USAGE}"))?,
        out: out.ok_or_else(|| format!("--out is required\n{USAGE}"))?,
        config,
        quantize_int8,
        calibrate,
        calib_batches,
        calib_batch_size,
        calib_seed,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let ckpt = Checkpoint::load(&args.checkpoint)
        .map_err(|e| format!("cannot load checkpoint {}: {e}", args.checkpoint))?;
    let config: Option<VggConfig> = match &args.config {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config {path}: {e}"))?;
            Some(
                serde_json::from_str(&json)
                    .map_err(|e| format!("config {path} is not a VggConfig: {e}"))?,
            )
        }
        None => None,
    };

    let mut artifact =
        ModelArtifact::from_checkpoint(&ckpt, config).map_err(|e| e.to_string())?;
    if args.quantize_int8 {
        artifact = artifact
            .quantize(
                args.calibrate,
                args.calib_batch_size,
                args.calib_batches,
                args.calib_seed,
            )
            .map_err(|e| format!("quantization failed: {e}"))?;
    }
    artifact.save(&args.out).map_err(|e| e.to_string())?;

    let bytes = std::fs::metadata(&args.out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} ({} dtype, {bytes} bytes) from {}",
        args.out,
        artifact.dtype(),
        args.checkpoint
    );
    Ok(())
}

fn main() {
    antidote_obs::init_from_env();
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(msg) = run(&args) {
        eprintln!("convert: {msg}");
        std::process::exit(1);
    }
}
