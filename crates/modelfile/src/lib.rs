//! Single-file dtype-tagged model artifacts (`.adm`) — DESIGN.md §16,
//! normative byte spec in `docs/FORMAT.md`.
//!
//! A trained, calibrated, quantized model is worthless if it cannot be
//! shipped: this crate defines the one immutable file a serving fleet
//! cold-starts from. The container ([`container`]) is a GGUF-inspired
//! binary layout — fixed header, metadata KV section, and dtype-tagged
//! tensor payloads (f32, or i8 with per-row scales riding next to their
//! weights) at 64-byte-aligned offsets with per-tensor FNV-1a
//! checksums, all loaded with **one sequential read**. The artifact
//! layer ([`artifact`]) interprets a container as a model: one
//! dtype-aware [`ModelArtifact::load`] entry point replaces the
//! fp32/int8 parallel type twins, and [`ModelArtifact::build_network`]
//! hands serving factories a ready [`antidote_models::Network`].
//!
//! The `convert` binary turns v2 checkpoints into `.adm` files, with
//! optional calibrate+quantize in one pass:
//!
//! ```text
//! convert --checkpoint trained.json --out model.adm
//! convert --checkpoint trained.json --out model-int8.adm --quantize int8 --calibrate minmax
//! ```
//!
//! Every failure mode on hostile bytes is a typed [`ModelFileError`] —
//! loading never panics and never yields silently garbled weights.
//!
//! # Examples
//!
//! ```
//! use antidote_core::checkpoint::Checkpoint;
//! use antidote_modelfile::ModelArtifact;
//! use antidote_models::{Network, Vgg, VggConfig};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let cfg = VggConfig::vgg_tiny(8, 3);
//! let mut net = Vgg::new(&mut SmallRng::seed_from_u64(7), cfg.clone());
//! let ckpt = Checkpoint::capture(&mut net).with_vgg_config(cfg);
//!
//! let path = std::env::temp_dir().join("doc_example.adm");
//! ModelArtifact::from_checkpoint(&ckpt, None).unwrap().save(&path).unwrap();
//! let loaded = ModelArtifact::load(&path).unwrap();
//! assert_eq!(loaded.dtype().to_string(), "f32");
//! let _ready: Box<dyn Network> = loaded.build_network();
//! # let _ = std::fs::remove_file(path);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod container;
mod error;

pub use artifact::{
    ModelArtifact, ModelDtype, KV_CALIBRATION, KV_CONFIG, KV_DTYPE, KV_FAMILY,
    KV_PROVENANCE_ARCH, KV_PROVENANCE_CHECKSUM, KV_QUANT_SCHEME, QUANT_SCHEME,
};
pub use container::{
    fnv1a, Container, ContainerBuilder, Dtype, KvValue, TensorEntry, ALIGNMENT, FORMAT_VERSION,
    HEADER_LEN, MAGIC, MAX_COUNT, MAX_NAME_LEN, MAX_RANK,
};
pub use error::ModelFileError;
