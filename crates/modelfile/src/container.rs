//! The `.adm` binary container: header, metadata KVs, and dtype-tagged
//! tensor payloads (see `docs/FORMAT.md` for the normative byte-level
//! spec).
//!
//! The layout is GGUF-inspired and optimized for cold start: all
//! variable-length structure (KV section, tensor index) lives in a
//! prefix that is parsed once, and every tensor payload sits at a
//! 64-byte-aligned offset inside one contiguous data section — the
//! whole file arrives with a single sequential read and the hot path
//! never parses per tensor.
//!
//! Parsing is defensive: every failure mode on hostile bytes is a typed
//! [`ModelFileError`], never a panic, and every tensor checksum is
//! verified before [`Container::from_bytes`] returns.

use crate::error::ModelFileError;
use std::path::Path;

/// File magic, the first four bytes of every `.adm` file.
pub const MAGIC: [u8; 4] = *b"ADMF";

/// Current container format version (header field 2).
pub const FORMAT_VERSION: u32 = 1;

/// Tensor payload alignment in bytes. Every payload offset — relative
/// to the data section, which itself starts on an alignment boundary in
/// the file — is a multiple of this.
pub const ALIGNMENT: u32 = 64;

/// Fixed header size in bytes (magic through `data_size`).
pub const HEADER_LEN: usize = 32;

/// Longest accepted KV key / tensor name, in bytes.
pub const MAX_NAME_LEN: u32 = 1024;

/// Longest accepted KV string value, in bytes (model configs are JSON).
pub const MAX_KV_STR_LEN: u32 = 1 << 20;

/// Highest accepted tensor rank.
pub const MAX_RANK: u8 = 8;

/// Most KV entries / tensors a file may declare.
pub const MAX_COUNT: u32 = 65_536;

/// FNV-1a 64 over a byte slice — the per-tensor checksum algorithm
/// (same constants as `antidote-core`'s parameter checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A metadata value. Unknown *keys* are ignored by loaders (forward
/// compatibility); an unknown value-type *tag* is a typed error because
/// its length cannot be known, so adding a variant requires a format
/// version bump.
#[derive(Debug, Clone, PartialEq)]
pub enum KvValue {
    /// UTF-8 string (tag 0).
    Str(String),
    /// Unsigned 64-bit integer (tag 1).
    U64(u64),
    /// IEEE-754 double (tag 2).
    F64(f64),
    /// Boolean (tag 3).
    Bool(bool),
}

/// Tensor element type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// Little-endian IEEE-754 `f32` values (tag 0); payload is
    /// `4 · product(dims)` bytes.
    F32,
    /// `i8` matrix with per-row dequantization scales (tag 1): `dims`
    /// must be rank 2 `[rows, cols]` and the payload is `rows·cols`
    /// `i8` bytes followed immediately by `rows` little-endian `f32`
    /// scales — the scales travel next to the weights they dequantize.
    I8,
}

impl Dtype {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::I8 => 1,
        }
    }

    /// Decodes a tag byte; `None` for tags this build does not know.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Dtype::F32),
            1 => Some(Dtype::I8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dtype::F32 => "f32",
            Dtype::I8 => "i8",
        })
    }
}

/// One row of the tensor index.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Tensor name (unique within a file).
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Dimensions, outermost first.
    pub dims: Vec<u64>,
    /// Payload offset relative to the data section start; always a
    /// multiple of [`ALIGNMENT`].
    pub offset: u64,
    /// Payload size in bytes (for [`Dtype::I8`] this includes the
    /// trailing scales).
    pub nbytes: u64,
    /// FNV-1a 64 over the payload bytes.
    pub checksum: u64,
}

impl TensorEntry {
    /// Payload byte count implied by `dtype` and `dims`, or `None` on
    /// arithmetic overflow.
    fn expected_nbytes(dtype: Dtype, dims: &[u64]) -> Option<u64> {
        let mut elems: u64 = 1;
        for &d in dims {
            elems = elems.checked_mul(d)?;
        }
        match dtype {
            Dtype::F32 => elems.checked_mul(4),
            // i8 data + one f32 scale per row.
            Dtype::I8 => elems.checked_add(dims.first().copied()?.checked_mul(4)?),
        }
    }
}

/// Byte cursor with typed, never-panicking take helpers.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ModelFileError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| ModelFileError::Malformed(format!("{what}: length overflow")))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| ModelFileError::Truncated {
                what: what.to_string(),
                offset: self.pos as u64,
            })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ModelFileError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ModelFileError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ModelFileError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length-prefixed UTF-8 string with an explicit length cap.
    fn string(&mut self, cap: u32, what: &str) -> Result<String, ModelFileError> {
        let len = self.u32(what)?;
        if len > cap {
            return Err(ModelFileError::Oversized {
                what: what.to_string(),
                declared: len as u64,
                limit: cap as u64,
            });
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ModelFileError::Malformed(format!("{what}: not valid UTF-8")))
    }
}

/// A parsed `.adm` file: metadata, tensor index, and the raw data
/// section. Every checksum has been verified by the time a value of
/// this type exists.
#[derive(Debug)]
pub struct Container {
    /// Metadata entries in file order.
    pub kvs: Vec<(String, KvValue)>,
    /// Tensor index in file order.
    pub tensors: Vec<TensorEntry>,
    /// The data section (payload bytes for all tensors).
    data: Vec<u8>,
}

impl Container {
    /// Reads and fully validates a file. The payload arrives with one
    /// sequential [`std::fs::read`]; only the header prefix is parsed.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::Io`] when the file cannot be read, otherwise
    /// any parse/validation error from [`Container::from_bytes`].
    pub fn read(path: impl AsRef<Path>) -> Result<Self, ModelFileError> {
        let bytes =
            std::fs::read(path.as_ref()).map_err(|e| ModelFileError::Io(e.to_string()))?;
        Self::from_bytes(bytes)
    }

    /// Parses a file image, verifying magic, version, alignment,
    /// bounds, and every tensor checksum.
    ///
    /// # Errors
    ///
    /// A typed [`ModelFileError`] for every way the bytes can be wrong;
    /// hostile input never panics.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ModelFileError> {
        let mut cur = Cursor::new(&bytes);
        let magic = cur.take(4, "magic")?;
        if magic != MAGIC {
            return Err(ModelFileError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = cur.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(ModelFileError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let alignment = cur.u32("alignment")?;
        if alignment != ALIGNMENT {
            return Err(ModelFileError::BadAlignment {
                declared: alignment,
                expected: ALIGNMENT,
            });
        }
        let kv_count = cur.u32("kv count")?;
        let tensor_count = cur.u32("tensor count")?;
        let _reserved = cur.u32("reserved")?;
        let data_size = cur.u64("data size")?;
        for (count, what) in [(kv_count, "kv count"), (tensor_count, "tensor count")] {
            if count > MAX_COUNT {
                return Err(ModelFileError::Oversized {
                    what: what.to_string(),
                    declared: count as u64,
                    limit: MAX_COUNT as u64,
                });
            }
        }

        let mut kvs = Vec::with_capacity(kv_count as usize);
        for _ in 0..kv_count {
            let key = cur.string(MAX_NAME_LEN, "kv key")?;
            let tag = cur.u8("kv value tag")?;
            let value = match tag {
                0 => KvValue::Str(cur.string(MAX_KV_STR_LEN, "kv string value")?),
                1 => KvValue::U64(cur.u64("kv u64 value")?),
                2 => KvValue::F64(f64::from_bits(cur.u64("kv f64 value")?)),
                3 => KvValue::Bool(cur.u8("kv bool value")? != 0),
                _ => return Err(ModelFileError::UnknownKvTag { key, tag }),
            };
            kvs.push((key, value));
        }

        let mut tensors: Vec<TensorEntry> = Vec::with_capacity(tensor_count as usize);
        for _ in 0..tensor_count {
            let name = cur.string(MAX_NAME_LEN, "tensor name")?;
            let dtype_tag = cur.u8("tensor dtype")?;
            let Some(dtype) = Dtype::from_tag(dtype_tag) else {
                return Err(ModelFileError::UnknownDtype {
                    tensor: name,
                    tag: dtype_tag,
                });
            };
            let rank = cur.u8("tensor rank")?;
            if rank == 0 || rank > MAX_RANK {
                return Err(ModelFileError::Malformed(format!(
                    "tensor {name}: rank {rank} outside 1..={MAX_RANK}"
                )));
            }
            if dtype == Dtype::I8 && rank != 2 {
                return Err(ModelFileError::Malformed(format!(
                    "tensor {name}: i8 tensors must be rank 2, got {rank}"
                )));
            }
            let mut dims = Vec::with_capacity(rank as usize);
            for _ in 0..rank {
                dims.push(cur.u64("tensor dim")?);
            }
            let offset = cur.u64("tensor offset")?;
            let nbytes = cur.u64("tensor nbytes")?;
            let checksum = cur.u64("tensor checksum")?;
            if offset % ALIGNMENT as u64 != 0 {
                return Err(ModelFileError::MisalignedOffset {
                    tensor: name,
                    offset,
                });
            }
            let Some(expected) = TensorEntry::expected_nbytes(dtype, &dims) else {
                return Err(ModelFileError::Malformed(format!(
                    "tensor {name}: dims {dims:?} overflow"
                )));
            };
            if nbytes != expected {
                return Err(ModelFileError::Malformed(format!(
                    "tensor {name}: declares {nbytes} bytes but dims {dims:?} ({dtype}) need {expected}"
                )));
            }
            let Some(end) = offset.checked_add(nbytes) else {
                return Err(ModelFileError::Malformed(format!(
                    "tensor {name}: offset+nbytes overflows"
                )));
            };
            if end > data_size {
                return Err(ModelFileError::Oversized {
                    what: format!("tensor {name}"),
                    declared: end,
                    limit: data_size,
                });
            }
            if tensors.iter().any(|t| t.name == name) {
                return Err(ModelFileError::Malformed(format!(
                    "duplicate tensor name {name}"
                )));
            }
            tensors.push(TensorEntry {
                name,
                dtype,
                dims,
                offset,
                nbytes,
                checksum,
            });
        }

        // The data section starts at the next alignment boundary after
        // the index and must hold exactly `data_size` bytes.
        let data_start = align_up(cur.pos, ALIGNMENT as usize);
        if bytes
            .get(cur.pos..data_start)
            .is_none_or(|pad| pad.iter().any(|&b| b != 0))
        {
            return Err(ModelFileError::Truncated {
                what: "header padding".to_string(),
                offset: cur.pos as u64,
            });
        }
        let actual = (bytes.len() - data_start) as u64;
        if actual != data_size {
            return Err(ModelFileError::Truncated {
                what: format!("data section: header declares {data_size} bytes, file holds {actual}"),
                offset: data_start as u64,
            });
        }
        let mut data = bytes;
        data.drain(..data_start);

        // Verify every payload checksum up front: a loaded Container is
        // known-good, and the hot path never re-validates.
        let container = Container { kvs, tensors, data };
        for entry in &container.tensors {
            let payload = container.payload(entry)?;
            let computed = fnv1a(payload);
            if computed != entry.checksum {
                return Err(ModelFileError::ChecksumMismatch {
                    tensor: entry.name.clone(),
                    stored: entry.checksum,
                    computed,
                });
            }
        }
        Ok(container)
    }

    /// Raw payload bytes of an index entry.
    fn payload(&self, entry: &TensorEntry) -> Result<&[u8], ModelFileError> {
        let start = entry.offset as usize;
        let end = start + entry.nbytes as usize; // bounds checked at parse
        self.data
            .get(start..end)
            .ok_or_else(|| ModelFileError::Truncated {
                what: format!("tensor {} payload", entry.name),
                offset: entry.offset,
            })
    }

    /// Looks up a metadata value by key.
    pub fn kv(&self, key: &str) -> Option<&KvValue> {
        self.kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a string metadata value by key.
    pub fn kv_str(&self, key: &str) -> Option<&str> {
        match self.kv(key) {
            Some(KvValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up a tensor index entry by name.
    pub fn tensor(&self, name: &str) -> Option<&TensorEntry> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Decodes an [`Dtype::F32`] tensor's payload into values.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::Malformed`] when the entry is not `f32`.
    pub fn f32_values(&self, entry: &TensorEntry) -> Result<Vec<f32>, ModelFileError> {
        if entry.dtype != Dtype::F32 {
            return Err(ModelFileError::Malformed(format!(
                "tensor {} is {}, not f32",
                entry.name, entry.dtype
            )));
        }
        Ok(decode_f32(self.payload(entry)?))
    }

    /// Decodes an [`Dtype::I8`] tensor's payload into `(data, scales)`:
    /// `rows·cols` int8 values and `rows` per-row scales.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::Malformed`] when the entry is not `i8`.
    pub fn i8_values(&self, entry: &TensorEntry) -> Result<(Vec<i8>, Vec<f32>), ModelFileError> {
        if entry.dtype != Dtype::I8 {
            return Err(ModelFileError::Malformed(format!(
                "tensor {} is {}, not i8",
                entry.name, entry.dtype
            )));
        }
        let payload = self.payload(entry)?;
        let rows = entry.dims[0] as usize; // rank 2 checked at parse
        let split = payload.len() - rows * 4;
        let data = payload[..split].iter().map(|&b| b as i8).collect();
        let scales = decode_f32(&payload[split..]);
        Ok((data, scales))
    }

    /// Total payload bytes (the size of the data section).
    pub fn data_len(&self) -> usize {
        self.data.len()
    }
}

fn decode_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// Assembles `.adm` file images. The builder computes aligned offsets
/// and checksums; callers only name tensors and provide values.
#[derive(Debug, Default)]
pub struct ContainerBuilder {
    kvs: Vec<(String, KvValue)>,
    tensors: Vec<(String, Dtype, Vec<u64>, Vec<u8>)>,
}

impl ContainerBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a metadata entry.
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds [`MAX_NAME_LEN`] bytes.
    pub fn kv(&mut self, key: impl Into<String>, value: KvValue) -> &mut Self {
        let key = key.into();
        assert!(key.len() <= MAX_NAME_LEN as usize, "kv key too long");
        self.kvs.push((key, value));
        self
    }

    /// Appends an f32 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `dims` does not multiply out to `values.len()`.
    pub fn tensor_f32(&mut self, name: impl Into<String>, dims: &[usize], values: &[f32]) -> &mut Self {
        let elems: usize = dims.iter().product();
        assert_eq!(elems, values.len(), "dims/value count mismatch");
        let mut payload = Vec::with_capacity(values.len() * 4);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.push(name.into(), Dtype::F32, dims, payload);
        self
    }

    /// Appends an i8 matrix with per-row scales.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows·cols` or `scales.len() != rows`.
    pub fn tensor_i8(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        data: &[i8],
        scales: &[f32],
    ) -> &mut Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows·cols");
        assert_eq!(scales.len(), rows, "one scale per row");
        let mut payload = Vec::with_capacity(data.len() + scales.len() * 4);
        payload.extend(data.iter().map(|&v| v as u8));
        for s in scales {
            payload.extend_from_slice(&s.to_le_bytes());
        }
        self.push(name.into(), Dtype::I8, &[rows, cols], payload);
        self
    }

    fn push(&mut self, name: String, dtype: Dtype, dims: &[usize], payload: Vec<u8>) {
        assert!(name.len() <= MAX_NAME_LEN as usize, "tensor name too long");
        assert!(
            !dims.is_empty() && dims.len() <= MAX_RANK as usize,
            "rank outside 1..={MAX_RANK}"
        );
        assert!(
            self.tensors.iter().all(|(n, ..)| *n != name),
            "duplicate tensor name {name}"
        );
        let dims = dims.iter().map(|&d| d as u64).collect();
        self.tensors.push((name, dtype, dims, payload));
    }

    /// Serializes the file image.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Assign aligned payload offsets within the data section.
        let mut offsets = Vec::with_capacity(self.tensors.len());
        let mut off = 0usize;
        for (_, _, _, payload) in &self.tensors {
            off = align_up(off, ALIGNMENT as usize);
            offsets.push(off as u64);
            off += payload.len();
        }
        let data_size = off as u64;

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ALIGNMENT.to_le_bytes());
        out.extend_from_slice(&(self.kvs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&data_size.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);

        for (key, value) in &self.kvs {
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            match value {
                KvValue::Str(s) => {
                    out.push(0);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                KvValue::U64(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                KvValue::F64(v) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                KvValue::Bool(v) => {
                    out.push(3);
                    out.push(*v as u8);
                }
            }
        }

        for ((name, dtype, dims, payload), offset) in self.tensors.iter().zip(&offsets) {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(dtype.tag());
            out.push(dims.len() as u8);
            for d in dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        }

        // Zero-pad to the data section boundary, then lay payloads at
        // their pre-assigned aligned offsets.
        let data_start = align_up(out.len(), ALIGNMENT as usize);
        out.resize(data_start, 0);
        for ((_, _, _, payload), offset) in self.tensors.iter().zip(&offsets) {
            out.resize(data_start + *offset as usize, 0);
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the file atomically (temporary sibling + rename), so a
    /// crash mid-write never leaves a truncated artifact at `path`.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::Io`] when writing or renaming fails.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), ModelFileError> {
        let path = path.as_ref();
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("model.adm");
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let bytes = self.to_bytes();
        std::fs::write(&tmp, &bytes).map_err(|e| ModelFileError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            ModelFileError::Io(e.to_string())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContainerBuilder {
        let mut b = ContainerBuilder::new();
        b.kv("model.family", KvValue::Str("vgg".into()))
            .kv("answer", KvValue::U64(42))
            .kv("ratio", KvValue::F64(0.5))
            .kv("flag", KvValue::Bool(true))
            .tensor_f32("w", &[2, 3], &[1.0, -2.0, 3.5, 0.0, 5.25, -6.125])
            .tensor_i8("q", 2, 2, &[1, -2, 3, -128], &[0.5, 0.25]);
        b
    }

    #[test]
    fn round_trips_kvs_and_tensors() {
        let c = Container::from_bytes(sample().to_bytes()).unwrap();
        assert_eq!(c.kv_str("model.family"), Some("vgg"));
        assert_eq!(c.kv("answer"), Some(&KvValue::U64(42)));
        assert_eq!(c.kv("ratio"), Some(&KvValue::F64(0.5)));
        assert_eq!(c.kv("flag"), Some(&KvValue::Bool(true)));
        assert_eq!(c.kv("missing"), None);
        let w = c.tensor("w").unwrap();
        assert_eq!(w.dims, vec![2, 3]);
        assert_eq!(
            c.f32_values(w).unwrap(),
            vec![1.0, -2.0, 3.5, 0.0, 5.25, -6.125]
        );
        let q = c.tensor("q").unwrap();
        let (data, scales) = c.i8_values(q).unwrap();
        assert_eq!(data, vec![1, -2, 3, -128]);
        assert_eq!(scales, vec![0.5, 0.25]);
    }

    #[test]
    fn offsets_are_aligned_and_read_is_sequential_image() {
        let bytes = sample().to_bytes();
        let c = Container::from_bytes(bytes).unwrap();
        for t in &c.tensors {
            assert_eq!(t.offset % ALIGNMENT as u64, 0, "{} misaligned", t.name);
        }
        // Data section bytes exactly cover the last payload.
        let last = c.tensors.last().unwrap();
        assert_eq!(c.data_len() as u64, last.offset + last.nbytes);
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("adm_container_{}.adm", std::process::id()));
        sample().write(&path).unwrap();
        let c = Container::read(&path).unwrap();
        assert_eq!(c.tensors.len(), 2);
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("adm_container") && n.contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "leftover temp files: {strays:?}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_is_valid() {
        let c = Container::from_bytes(ContainerBuilder::new().to_bytes()).unwrap();
        assert!(c.kvs.is_empty() && c.tensors.is_empty());
        assert_eq!(c.data_len(), 0);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            Container::read("/nonexistent/never/model.adm"),
            Err(ModelFileError::Io(_))
        ));
    }
}
