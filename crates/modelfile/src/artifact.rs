//! Model-level view of an `.adm` file: one dtype-aware entry point
//! ([`ModelArtifact::load`]) that hides the fp32/int8 parallel type
//! twins behind a single artifact type, plus the checkpoint → artifact
//! conversion the `convert` binary wraps.

use crate::container::{Container, ContainerBuilder, KvValue};
use crate::error::ModelFileError;
use antidote_core::checkpoint::{restore_tensors, Checkpoint};
use antidote_core::quant::{calibrate, CalibrationMethod};
use antidote_data::SynthConfig;
use antidote_models::{
    BnParts, Network, QuantizedConvParts, QuantizedVgg, QuantizedVggParts, Vgg, VggConfig,
};
use antidote_tensor::quant::QuantizedMatrix;
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::Path;

/// Metadata key: architecture family (currently always `"vgg"`).
pub const KV_FAMILY: &str = "model.family";
/// Metadata key: weight numeric domain, [`ModelDtype`] as a string.
pub const KV_DTYPE: &str = "model.dtype";
/// Metadata key: the generating [`VggConfig`] as JSON.
pub const KV_CONFIG: &str = "model.config";
/// Metadata key: calibration method of an int8 artifact.
pub const KV_CALIBRATION: &str = "calibration.method";
/// Metadata key: quantization scheme of an int8 artifact.
pub const KV_QUANT_SCHEME: &str = "quant.scheme";
/// Metadata key: `describe()` string of the source network.
pub const KV_PROVENANCE_ARCH: &str = "provenance.architecture";
/// Metadata key: parameter checksum of the source checkpoint.
pub const KV_PROVENANCE_CHECKSUM: &str = "provenance.param_checksum";

/// The quantization scheme every int8 artifact declares: symmetric
/// per-output-row int8 weights, zero-point free (DESIGN.md §11).
pub const QUANT_SCHEME: &str = "symmetric-per-row-int8";

/// The seed used to structurally instantiate networks before restoring
/// file weights over them (the init values are all overwritten, so any
/// fixed seed works; one constant keeps it reproducible).
const STRUCTURAL_SEED: u64 = 0;

/// Numeric domain of an artifact's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDtype {
    /// Full-precision fp32 weights.
    F32,
    /// Symmetric per-row int8 weights with calibrated activation scales.
    Int8,
}

impl std::fmt::Display for ModelDtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelDtype::F32 => "f32",
            ModelDtype::Int8 => "int8",
        })
    }
}

impl std::str::FromStr for ModelDtype {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(ModelDtype::F32),
            "int8" => Ok(ModelDtype::Int8),
            other => Err(format!("unknown model dtype {other:?}")),
        }
    }
}

/// The weights an artifact carries, tagged by domain.
#[derive(Debug, Clone)]
enum ModelWeights {
    /// Parameter tensors in visit order (`param.NNNN` in the file).
    F32(Vec<Tensor>),
    /// Quantized layer parts (`conv.N.*` / `bn.N.*` / `linear.*` /
    /// `quant.act_scales` in the file).
    Int8(QuantizedVggParts),
}

/// A deployable model: configuration, dtype-tagged weights, and
/// provenance metadata, loadable from and savable to one `.adm` file.
///
/// A value of this type is always *valid*: the constructors build the
/// network once to prove the weights fit the config, so
/// [`ModelArtifact::build_network`] cannot fail afterwards and serving
/// factories may call it per replica without error handling.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    config: VggConfig,
    weights: ModelWeights,
    /// Provenance KVs carried verbatim between file generations.
    extra_kvs: Vec<(String, KvValue)>,
}

impl ModelArtifact {
    /// The artifact's weight domain.
    pub fn dtype(&self) -> ModelDtype {
        match self.weights {
            ModelWeights::F32(_) => ModelDtype::F32,
            ModelWeights::Int8(_) => ModelDtype::Int8,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Provenance metadata (beyond the structural keys the format
    /// itself owns).
    pub fn metadata(&self) -> &[(String, KvValue)] {
        &self.extra_kvs
    }

    /// Builds an fp32 artifact from a v2 checkpoint. The architecture
    /// comes from the checkpoint's embedded [`VggConfig`] (see
    /// `Checkpoint::with_vgg_config`) or the explicit `config` override,
    /// which wins when both are present.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::BadModel`] when no config is available, the
    /// config is invalid, or the checkpoint's parameters do not fit it.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        config: Option<VggConfig>,
    ) -> Result<Self, ModelFileError> {
        let config = config
            .or_else(|| ckpt.vgg_config.clone())
            .ok_or_else(|| {
                ModelFileError::BadModel(
                    "checkpoint embeds no vgg config; pass one explicitly".to_string(),
                )
            })?;
        config.validate().map_err(ModelFileError::BadModel)?;
        let artifact = Self {
            config,
            weights: ModelWeights::F32(ckpt.params.clone()),
            extra_kvs: vec![
                (
                    KV_PROVENANCE_ARCH.to_string(),
                    KvValue::Str(ckpt.architecture.clone()),
                ),
                (
                    KV_PROVENANCE_CHECKSUM.to_string(),
                    KvValue::U64(ckpt.checksum),
                ),
            ],
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Quantizes an fp32 artifact to int8 in one pass: rebuilds the
    /// network, calibrates activation scales on synthetic held-out
    /// batches (`antidote_core::quant::calibrate`), and snapshots the
    /// result as int8 weights. Provenance KVs are carried over and the
    /// calibration method / quant scheme are recorded.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::BadModel`] when the artifact is already int8
    /// or its input is not the synthetic dataset's 3-channel shape.
    pub fn quantize(
        &self,
        method: CalibrationMethod,
        calib_batch_size: usize,
        calib_batches: usize,
        calib_seed: u64,
    ) -> Result<Self, ModelFileError> {
        let ModelWeights::F32(params) = &self.weights else {
            return Err(ModelFileError::BadModel(
                "artifact is already int8".to_string(),
            ));
        };
        if self.config.input_channels != 3 {
            return Err(ModelFileError::BadModel(format!(
                "calibration uses the 3-channel synthetic dataset; config has {} input channels",
                self.config.input_channels
            )));
        }
        let mut net = Vgg::new(
            &mut SmallRng::seed_from_u64(STRUCTURAL_SEED),
            self.config.clone(),
        );
        restore_tensors(&mut net, params).map_err(|e| ModelFileError::BadModel(e.to_string()))?;

        let samples = calib_batch_size * calib_batches;
        let per_class = samples.div_ceil(self.config.classes).max(1);
        let data = SynthConfig::tiny(self.config.classes, self.config.input_size)
            .with_samples(per_class, 1)
            .with_seed(calib_seed)
            .generate();
        let cal = calibrate(&mut net, &data.train, calib_batch_size, calib_batches, method);
        let parts = QuantizedVgg::from_vgg(&net, cal.input_scale, &cal.tap_scales).to_parts();

        let method_label = match method {
            CalibrationMethod::MinMax => "minmax".to_string(),
            CalibrationMethod::Percentile(p) => format!("percentile:{p}"),
        };
        let mut extra_kvs = self.extra_kvs.clone();
        extra_kvs.push((KV_CALIBRATION.to_string(), KvValue::Str(method_label)));
        extra_kvs.push((
            KV_QUANT_SCHEME.to_string(),
            KvValue::Str(QUANT_SCHEME.to_string()),
        ));
        let artifact = Self {
            config: self.config.clone(),
            weights: ModelWeights::Int8(parts),
            extra_kvs,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Instantiates the network. Infallible by construction: every
    /// constructor of this type validated the weights against the
    /// config by building once, so serving factories can call this per
    /// replica. fp32 weights restore bit-exactly; int8 parts are used
    /// verbatim, so logits are bit-identical to the exporting network.
    pub fn build_network(&self) -> Box<dyn Network> {
        self.try_build().expect("artifact validated at construction")
    }

    fn try_build(&self) -> Result<Box<dyn Network>, ModelFileError> {
        match &self.weights {
            ModelWeights::F32(params) => {
                let mut net = Vgg::new(
                    &mut SmallRng::seed_from_u64(STRUCTURAL_SEED),
                    self.config.clone(),
                );
                restore_tensors(&mut net, params)
                    .map_err(|e| ModelFileError::BadModel(e.to_string()))?;
                Ok(Box::new(net))
            }
            ModelWeights::Int8(parts) => {
                let net = QuantizedVgg::from_parts(self.config.clone(), parts.clone())
                    .map_err(ModelFileError::BadModel)?;
                Ok(Box::new(net))
            }
        }
    }

    /// Proves the weights fit the config (and, for fp32, are finite
    /// enough to restore) by building the network once.
    fn validate(&self) -> Result<(), ModelFileError> {
        self.try_build().map(|_| ())
    }

    /// Serializes to an `.adm` file, written atomically.
    ///
    /// # Errors
    ///
    /// [`ModelFileError::Io`] when writing fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelFileError> {
        let mut b = ContainerBuilder::new();
        b.kv(KV_FAMILY, KvValue::Str("vgg".to_string()));
        b.kv(KV_DTYPE, KvValue::Str(self.dtype().to_string()));
        let config_json = serde_json::to_string(&self.config)
            .expect("VggConfig serialization cannot fail");
        b.kv(KV_CONFIG, KvValue::Str(config_json));
        for (key, value) in &self.extra_kvs {
            b.kv(key.clone(), value.clone());
        }
        match &self.weights {
            ModelWeights::F32(params) => {
                for (i, t) in params.iter().enumerate() {
                    b.tensor_f32(format!("param.{i:04}"), t.dims(), t.data());
                }
            }
            ModelWeights::Int8(parts) => {
                for (i, conv) in parts.convs.iter().enumerate() {
                    let q = &conv.qweight;
                    b.tensor_i8(format!("conv.{i}.qweight"), q.rows, q.cols, &q.data, &q.scales);
                    b.tensor_f32(format!("conv.{i}.bias"), &[conv.bias.len()], &conv.bias);
                }
                let act_scales: Vec<f32> = parts.convs.iter().map(|c| c.act_scale).collect();
                b.tensor_f32("quant.act_scales", &[act_scales.len()], &act_scales);
                for (i, bn) in parts.bns.iter().enumerate() {
                    for (field, t) in [
                        ("gamma", &bn.gamma),
                        ("beta", &bn.beta),
                        ("running_mean", &bn.running_mean),
                        ("running_var", &bn.running_var),
                    ] {
                        b.tensor_f32(format!("bn.{i}.{field}"), t.dims(), t.data());
                    }
                }
                b.tensor_f32("linear.weight", parts.linear_weight.dims(), parts.linear_weight.data());
                b.tensor_f32("linear.bias", parts.linear_bias.dims(), parts.linear_bias.data());
            }
        }
        b.write(path)
    }

    /// Loads and fully validates an `.adm` file — the single dtype-aware
    /// entry point for fp32 and int8 artifacts. Emits a `model.load`
    /// span and event recording bytes, dtype, and wall time.
    ///
    /// # Errors
    ///
    /// Any container-level [`ModelFileError`], or
    /// [`ModelFileError::BadModel`] when the container's contents do not
    /// form a loadable model.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelFileError> {
        let path = path.as_ref();
        let _span = antidote_obs::span("model.load");
        let start = std::time::Instant::now();
        let container = Container::read(path)?;
        let artifact = Self::from_container(&container)?;
        if antidote_obs::enabled() {
            let dtype = artifact.dtype().to_string();
            antidote_obs::info(
                "model.load",
                &[
                    ("path", antidote_obs::Value::Str(&path.display().to_string())),
                    ("dtype", antidote_obs::Value::Str(&dtype)),
                    ("bytes", antidote_obs::Value::U64(container.data_len() as u64)),
                    ("tensors", antidote_obs::Value::U64(container.tensors.len() as u64)),
                    (
                        "ms",
                        antidote_obs::Value::F64(start.elapsed().as_secs_f64() * 1e3),
                    ),
                ],
            );
        }
        Ok(artifact)
    }

    /// Interprets a parsed container as a model.
    fn from_container(c: &Container) -> Result<Self, ModelFileError> {
        let missing = |key: &str| ModelFileError::BadModel(format!("missing {key} metadata"));
        let family = c.kv_str(KV_FAMILY).ok_or_else(|| missing(KV_FAMILY))?;
        if family != "vgg" {
            return Err(ModelFileError::BadModel(format!(
                "unknown architecture family {family:?}"
            )));
        }
        let dtype: ModelDtype = c
            .kv_str(KV_DTYPE)
            .ok_or_else(|| missing(KV_DTYPE))?
            .parse()
            .map_err(ModelFileError::BadModel)?;
        let config: VggConfig = serde_json::from_str(
            c.kv_str(KV_CONFIG).ok_or_else(|| missing(KV_CONFIG))?,
        )
        .map_err(|e| ModelFileError::BadModel(format!("bad {KV_CONFIG} JSON: {e}")))?;
        config.validate().map_err(ModelFileError::BadModel)?;

        let structural = [KV_FAMILY, KV_DTYPE, KV_CONFIG];
        let extra_kvs: Vec<(String, KvValue)> = c
            .kvs
            .iter()
            .filter(|(k, _)| !structural.contains(&k.as_str()))
            .cloned()
            .collect();

        let require = |name: &str| {
            c.tensor(name)
                .ok_or_else(|| ModelFileError::BadModel(format!("missing tensor {name}")))
        };
        let tensor_of = |name: &str| -> Result<Tensor, ModelFileError> {
            let entry = require(name)?;
            let dims: Vec<usize> = entry.dims.iter().map(|&d| d as usize).collect();
            Tensor::from_vec(c.f32_values(entry)?, &dims)
                .map_err(|e| ModelFileError::BadModel(format!("tensor {name}: {e}")))
        };

        let weights = match dtype {
            ModelDtype::F32 => {
                let mut params = Vec::new();
                loop {
                    let name = format!("param.{:04}", params.len());
                    if c.tensor(&name).is_none() {
                        break;
                    }
                    params.push(tensor_of(&name)?);
                }
                if params.is_empty() {
                    return Err(ModelFileError::BadModel(
                        "f32 artifact holds no param.* tensors".to_string(),
                    ));
                }
                ModelWeights::F32(params)
            }
            ModelDtype::Int8 => {
                let n_convs = config.conv_layer_count();
                let scales_entry = require("quant.act_scales")?;
                let act_scales = c.f32_values(scales_entry)?;
                if act_scales.len() != n_convs {
                    return Err(ModelFileError::BadModel(format!(
                        "quant.act_scales holds {} entries, config needs {n_convs}",
                        act_scales.len()
                    )));
                }
                let mut convs = Vec::with_capacity(n_convs);
                for (i, act_scale) in act_scales.iter().enumerate() {
                    let qentry = require(&format!("conv.{i}.qweight"))?;
                    let (data, scales) = c.i8_values(qentry)?;
                    let qweight = QuantizedMatrix {
                        data,
                        scales,
                        rows: qentry.dims[0] as usize,
                        cols: qentry.dims[1] as usize,
                    };
                    let bias_t = tensor_of(&format!("conv.{i}.bias"))?;
                    convs.push(QuantizedConvParts {
                        qweight,
                        bias: bias_t.data().to_vec(),
                        act_scale: *act_scale,
                    });
                }
                let mut bns = Vec::new();
                if config.batchnorm {
                    for i in 0..n_convs {
                        bns.push(BnParts {
                            gamma: tensor_of(&format!("bn.{i}.gamma"))?,
                            beta: tensor_of(&format!("bn.{i}.beta"))?,
                            running_mean: tensor_of(&format!("bn.{i}.running_mean"))?,
                            running_var: tensor_of(&format!("bn.{i}.running_var"))?,
                        });
                    }
                }
                ModelWeights::Int8(QuantizedVggParts {
                    convs,
                    bns,
                    linear_weight: tensor_of("linear.weight")?,
                    linear_bias: tensor_of("linear.bias")?,
                })
            }
        };

        let artifact = Self {
            config,
            weights,
            extra_kvs,
        };
        artifact.validate()?;
        Ok(artifact)
    }
}
