//! Qualitative "shape" checks: the orderings and crossovers the paper's
//! figures report must hold at reproduction scale.

use antidote_repro::core::analysis::criteria_comparison;
use antidote_repro::core::flops::decompose;
use antidote_repro::core::settings::{proposed_settings, Workload};
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, DynamicPruner, PruneSchedule, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn trained_vgg(seed: u64, epochs: usize) -> (Vgg, antidote_repro::data::SynthDataset) {
    let data = SynthConfig::tiny(3, 16).with_samples(24, 10).generate();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
    trainer::train(
        &mut net,
        &data,
        &mut NoopHook,
        &TrainConfig {
            epochs,
            ..TrainConfig::fast_test()
        },
    );
    (net, data)
}

#[test]
fn fig2_shape_attention_dominates_inverse_on_average() {
    // Fig. 2's headline: attention-kept channels preserve accuracy far
    // better than inverse selection; random sits in between. We assert
    // the averaged ordering across moderate ratios (attention >= inverse
    // strictly, random within the envelope).
    let (mut net, data) = trained_vgg(71, 8);
    let ratios = [0.3, 0.5, 0.7];
    let curves = criteria_comparison(&mut net, &data.test, 2, 1, &ratios, 16);
    let avg = |label: &str| -> f32 {
        let c = curves.iter().find(|c| c.label == label).unwrap();
        c.accuracy.iter().sum::<f32>() / c.accuracy.len() as f32
    };
    let (att, rnd, inv) = (avg("attention"), avg("random"), avg("inverse"));
    assert!(
        att >= inv,
        "attention ({att}) must dominate inverse ({inv}); random = {rnd}"
    );
    assert!(
        att >= rnd - 0.05,
        "attention ({att}) should not lose clearly to random ({rnd})"
    );
}

#[test]
fn fig4_shape_redundancy_composition_orderings() {
    // ImageNet config: spatial share ≫ channel share.
    // CIFAR config: all channel. ResNet: balanced.
    let settings = proposed_settings();
    let imagenet = settings
        .iter()
        .find(|s| s.workload == Workload::Vgg16ImageNet100)
        .unwrap();
    let shapes = VggConfig::vgg16(224, 100).conv_shapes();
    let comp = decompose(&shapes, &imagenet.schedule);
    assert!(comp.spatial_pct > 5.0 * comp.channel_pct);

    let cifar = settings
        .iter()
        .find(|s| s.workload == Workload::Vgg16Cifar10)
        .unwrap();
    let shapes = VggConfig::vgg16(32, 10).conv_shapes();
    let comp = decompose(&shapes, &cifar.schedule);
    assert_eq!(comp.spatial_pct, 0.0);
    assert!(comp.channel_pct > 40.0);
}

#[test]
fn table1_shape_dynamic_reaches_higher_ratios_than_static_quotes() {
    // The paper's argument: dynamic pruning sustains per-block ratios
    // ([0.2 0.2 0.6 0.9 0.9]) far above the best static schedule
    // ([0.17 0.1 0.1 0.45 0.65]) — so its analytic reduction is higher.
    use antidote_repro::core::flops::analytic_flops;
    let shapes = VggConfig::vgg16(32, 10).conv_shapes();
    let dynamic = PruneSchedule::channel_only(vec![0.2, 0.2, 0.6, 0.9, 0.9]);
    let static_best = PruneSchedule::channel_only(vec![0.17, 0.1, 0.1, 0.45, 0.65]);
    let d = analytic_flops(&shapes, &dynamic).reduction_pct();
    let s = analytic_flops(&shapes, &static_best).reduction_pct();
    assert!(
        d > s + 5.0,
        "dynamic ({d}%) must clearly exceed best static ({s}%)"
    );
}

#[test]
fn ttd_shape_pruned_accuracy_close_to_unpruned() {
    // The paper's TTD claim: after targeted-dropout training, dynamic
    // pruning at the trained ratio costs little accuracy.
    let data = SynthConfig::tiny(3, 16).with_samples(24, 10).generate();
    let schedule = PruneSchedule::new(vec![0.25, 0.5], vec![]);
    let mut rng = SmallRng::seed_from_u64(73);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 3));
    let mut cfg = TtdConfig::new(schedule.clone(), 10);
    cfg.train = TrainConfig {
        epochs: 10,
        ..TrainConfig::fast_test()
    };
    let outcome = train_ttd(&mut net, &data, &cfg);
    let unpruned = trainer::evaluate_plain(&mut net, &data.test, 16);
    let mut pruner = outcome.pruner;
    let pruned = trainer::evaluate(&mut net, &data.test, &mut pruner, 16);
    assert!(
        unpruned - pruned < 0.25,
        "TTD-trained model should tolerate its schedule: unpruned {unpruned} pruned {pruned}"
    );
}

#[test]
fn dynamic_outperforms_static_masks_at_equal_ratio_without_finetune() {
    // At the same prune ratio and without any recovery training, the
    // per-input dynamic mask should lose no more accuracy than a fixed
    // random-but-frozen mask (the degenerate static baseline).
    use antidote_repro::core::Criterion;
    let (mut net, data) = trained_vgg(74, 8);
    let schedule = PruneSchedule::channel_only(vec![0.0, 0.5]);
    let mut dynamic = DynamicPruner::new(schedule.clone());
    let dyn_acc = trainer::evaluate(&mut net, &data.test, &mut dynamic, 16);
    // Frozen random mask = random criterion with a fixed seed acts as a
    // static mask surrogate whose choice ignores the input.
    let mut frozen = DynamicPruner::new(schedule)
        .with_criterion(Criterion::Random)
        .with_seed(123);
    let frozen_acc = trainer::evaluate(&mut net, &data.test, &mut frozen, 16);
    assert!(
        dyn_acc + 1e-6 >= frozen_acc - 0.05,
        "dynamic ({dyn_acc}) should not lose to input-blind masks ({frozen_acc})"
    );
}
