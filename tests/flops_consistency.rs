//! Cross-validation of the two FLOPs accounting paths: the analytic
//! model (paper-scale arithmetic) and the measured MAC counter (actual
//! skipped computation) must agree on the *reduction* within a tolerance
//! determined by border effects and pooling-mask propagation.

use antidote_repro::core::flops::analytic_flops;
use antidote_repro::core::trainer::evaluate_measured;
use antidote_repro::core::{DynamicPruner, PruneSchedule};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{Network, NoopHook, ResNet, ResNetConfig, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Measured reduction on the scaled net for a schedule.
fn measured_reduction(net: &mut dyn Network, image_size: usize, schedule: &PruneSchedule) -> f64 {
    let data = SynthConfig::tiny(2, image_size).with_samples(2, 4).generate();
    let (_, dense) = evaluate_measured(net, &data.test, &mut NoopHook, 4);
    let mut pruner = DynamicPruner::new(schedule.clone());
    let (_, pruned) = evaluate_measured(net, &data.test, &mut pruner, 4);
    100.0 * (1.0 - pruned / dense)
}

#[test]
fn vgg_channel_pruning_analytic_vs_measured() {
    // Channel-only pruning survives pooling exactly, so analytic and
    // measured reductions should track closely (same-architecture FLOPs
    // model evaluated on the scaled config).
    let cfg = VggConfig::vgg_small(32, 2, 4);
    let mut rng = SmallRng::seed_from_u64(11);
    let mut net = Vgg::new(&mut rng, cfg.clone());
    let schedule = PruneSchedule::channel_only(vec![0.5, 0.5, 0.5, 0.5, 0.5]);
    let analytic = analytic_flops(&cfg.conv_shapes(), &schedule).reduction_pct();
    let measured = measured_reduction(&mut net, 32, &schedule);
    assert!(
        (analytic - measured).abs() < 12.0,
        "analytic {analytic}% vs measured {measured}%"
    );
    assert!(measured > 20.0, "half-channel pruning must save real work");
}

#[test]
fn resnet_pruning_analytic_vs_measured() {
    let cfg = ResNetConfig::resnet_small(16, 2, 4);
    let mut rng = SmallRng::seed_from_u64(12);
    let mut net = ResNet::new(&mut rng, cfg.clone());
    let schedule = PruneSchedule::new(vec![0.4, 0.4, 0.4], vec![0.5, 0.5, 0.5]);
    let analytic = analytic_flops(&cfg.conv_shapes(), &schedule).reduction_pct();
    let measured = measured_reduction(&mut net, 16, &schedule);
    // ResNet's projection convs and head are unmodeled; allow a wider gap
    // but require agreement in magnitude.
    assert!(
        (analytic - measured).abs() < 18.0,
        "analytic {analytic}% vs measured {measured}%"
    );
    assert!(measured > 10.0);
}

#[test]
fn more_aggressive_schedules_reduce_more_everywhere() {
    // Monotonicity must hold in BOTH accounting paths.
    let cfg = VggConfig::vgg_small(32, 2, 4);
    let mut rng = SmallRng::seed_from_u64(13);
    let mut net = Vgg::new(&mut rng, cfg.clone());
    let mild = PruneSchedule::channel_only(vec![0.2; 5]);
    let aggressive = PruneSchedule::channel_only(vec![0.8; 5]);
    let a_mild = analytic_flops(&cfg.conv_shapes(), &mild).reduction_pct();
    let a_aggr = analytic_flops(&cfg.conv_shapes(), &aggressive).reduction_pct();
    assert!(a_aggr > a_mild);
    let m_mild = measured_reduction(&mut net, 32, &mild);
    let m_aggr = measured_reduction(&mut net, 32, &aggressive);
    assert!(
        m_aggr > m_mild,
        "measured monotonicity: {m_mild}% !< {m_aggr}%"
    );
}

#[test]
fn spatial_pruning_saves_within_blocks() {
    // Spatial masks are diluted by max-pool propagation across block
    // boundaries ("any-of-window" keeps more positions), so measured
    // savings are below analytic — but must still be substantial inside
    // multi-layer blocks.
    let cfg = VggConfig::vgg_small(32, 2, 4);
    let mut rng = SmallRng::seed_from_u64(14);
    let mut net = Vgg::new(&mut rng, cfg);
    let schedule = PruneSchedule::spatial_only(vec![0.6; 5]);
    let data = SynthConfig::tiny(2, 32).with_samples(2, 2).generate();
    let (_, dense) = evaluate_measured(&mut net, &data.test, &mut NoopHook, 2);
    let mut pruner = DynamicPruner::new(schedule);
    let (_, pruned) = evaluate_measured(&mut net, &data.test, &mut pruner, 2);
    let reduction = 100.0 * (1.0 - pruned / dense);
    assert!(
        reduction > 15.0,
        "spatial pruning should skip real work, got {reduction}%"
    );
}

#[test]
fn paper_scale_baselines_are_exact() {
    // The three baseline FLOPs of Table I, reproduced to within 2%.
    let checks = [
        (VggConfig::vgg16(32, 10).conv_shapes(), 3.13e8),
        (ResNetConfig::resnet56(32, 10).conv_shapes(), 1.28e8),
        (VggConfig::vgg16(224, 100).conv_shapes(), 1.52e10),
    ];
    for (shapes, expected) in checks {
        let total: u64 = shapes.iter().map(|s| s.macs()).sum();
        assert!(
            (total as f64 - expected).abs() / expected < 0.02,
            "baseline {total} vs paper {expected}"
        );
    }
}
