//! End-to-end serving workflow: concurrent clients with mixed compute
//! budgets against the `antidote-serve` engine.
//!
//! Asserts the PR's serving guarantees:
//!
//! 1. every submitted request ends in a response or a *typed* rejection
//!    — nothing is silently dropped;
//! 2. a budgeted response never spends more analytic MACs than its
//!    budget;
//! 3. worker count and batch composition are invisible to results:
//!    identical seeds give identical aggregate accuracy on 1 worker and
//!    on 4;
//! 4. on the same seeded workload, 4 workers achieve strictly higher
//!    throughput than 1 — the micro-batcher's coalescing window
//!    overlaps other workers' compute instead of serializing with it.

use antidote_core::PruneSchedule;
use antidote_data::{Split, SynthConfig};
use antidote_models::{Vgg, VggConfig};
use antidote_serve::{InferRequest, ModelFactory, ServeConfig, ServeEngine, ServeError};
use antidote_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLASSES: usize = 3;
const CLIENTS: usize = 3;

fn factory(seed: u64, image_size: usize) -> ModelFactory {
    Arc::new(move |_worker| {
        let mut rng = SmallRng::seed_from_u64(seed);
        Box::new(Vgg::new(&mut rng, VggConfig::vgg_tiny(image_size, CLASSES)))
    })
}

fn config(workers: usize, max_wait: Duration) -> ServeConfig {
    ServeConfig {
        workers,
        // Clients stay below max_batch so a batch never fills early: the
        // coalescing window always runs its full course, which is what
        // makes worker-count effects observable on a single core.
        max_batch: 8,
        max_wait,
        queue_capacity: 64,
        default_deadline: Duration::from_secs(10),
        base_schedule: PruneSchedule::channel_only(vec![0.6, 0.6]),
        ..ServeConfig::default()
    }
}

/// 3 classes x 8 test images per class = 24 images.
fn test_split(image_size: usize) -> Split {
    SynthConfig::tiny(CLASSES, image_size)
        .with_samples(1, 8)
        .generate()
        .test
}

/// Deterministic per-request budget tier, independent of which worker
/// or batch ends up carrying the request.
fn budget_for(index: usize, floor: f64, dense: f64) -> Option<f64> {
    let lerp = |f: f64| floor + f * (dense - floor);
    match index % 4 {
        0 => None,
        1 => Some(lerp(0.9)),
        2 => Some(lerp(0.4)),
        _ => Some(lerp(0.02)),
    }
}

/// The request slice client `c` owns: every `CLIENTS`-th image.
fn client_items(split: &Split, c: usize) -> Vec<(usize, Tensor, usize)> {
    (0..split.labels.len())
        .filter(|i| i % CLIENTS == c)
        .map(|i| (i, split.images.batch_item(i), split.labels[i]))
        .collect()
}

/// Serves every test image through `workers` replicas from concurrent
/// clients; returns (aggregate accuracy, elapsed, served count).
fn serve_split(
    workers: usize,
    max_wait: Duration,
    seed: u64,
    image_size: usize,
    split: &Split,
) -> (f64, Duration, usize) {
    let engine = ServeEngine::start(config(workers, max_wait), factory(seed, image_size))
        .expect("engine start");
    let handle = engine.handle();
    let floor = handle.floor_macs();
    let dense = handle.dense_macs();
    let n = split.labels.len();
    let start = Instant::now();
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let handle = handle.clone();
            let items = client_items(split, c);
            std::thread::spawn(move || {
                let mut hits = 0usize;
                let mut served = 0usize;
                for (i, image, label) in items {
                    let mut req = InferRequest::new(image);
                    if let Some(b) = budget_for(i, floor, dense) {
                        req = req.with_budget(b);
                    }
                    let resp = handle
                        .submit(req)
                        .and_then(|p| p.wait())
                        .expect("in-budget request must be served");
                    if let Some(b) = budget_for(i, floor, dense) {
                        assert!(
                            resp.achieved_macs <= b,
                            "achieved {} exceeds budget {b}",
                            resp.achieved_macs
                        );
                    }
                    served += 1;
                    hits += usize::from(resp.class == label);
                }
                (hits, served)
            })
        })
        .collect();
    let mut hits = 0;
    let mut served = 0;
    for j in joins {
        let (h, s) = j.join().expect("client thread");
        hits += h;
        served += s;
    }
    let elapsed = start.elapsed();
    let metrics = engine.shutdown();
    assert_eq!(metrics.completed as usize, served);
    (hits as f64 / n as f64, elapsed, served)
}

#[test]
fn mixed_budget_clients_are_served_or_typed_rejected() {
    let split = test_split(8);
    let engine = ServeEngine::start(config(2, Duration::from_millis(1)), factory(11, 8))
        .expect("engine start");
    let handle = engine.handle();
    let floor = handle.floor_macs();
    let dense = handle.dense_macs();
    let n = split.labels.len();
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let handle = handle.clone();
            let items = client_items(&split, c);
            std::thread::spawn(move || {
                let mut served = 0usize;
                let mut typed_rejections = 0usize;
                for (i, image, _) in items {
                    // Every 5th request asks for an impossible budget to
                    // exercise the typed-rejection path concurrently.
                    let infeasible = i % 5 == 4;
                    let mut req = InferRequest::new(image);
                    req = if infeasible {
                        req.with_budget(floor * 0.5)
                    } else if let Some(b) = budget_for(i, floor, dense) {
                        req.with_budget(b)
                    } else {
                        req
                    };
                    match handle.submit(req).and_then(|p| p.wait()) {
                        Ok(resp) => {
                            assert!(!infeasible, "infeasible budget must not be served");
                            if let Some(b) = budget_for(i, floor, dense) {
                                assert!(resp.achieved_macs <= b);
                            }
                            served += 1;
                        }
                        Err(ServeError::Budget(_)) if infeasible => typed_rejections += 1,
                        Err(other) => panic!("untyped/unexpected failure: {other:?}"),
                    }
                }
                (served, typed_rejections)
            })
        })
        .collect();
    let mut served = 0;
    let mut rejected = 0;
    for j in joins {
        let (s, r) = j.join().expect("client thread");
        served += s;
        rejected += r;
    }
    let metrics = engine.shutdown();
    // Every request reached a terminal state: served or typed-rejected.
    assert_eq!(served + rejected, n);
    assert_eq!(metrics.completed as usize, served);
    assert_eq!(metrics.infeasible as usize, rejected);
    assert!(rejected > 0, "workload must exercise the rejection path");
}

#[test]
fn worker_count_is_invisible_to_accuracy() {
    let split = test_split(8);
    let (acc1, _, served1) = serve_split(1, Duration::from_millis(1), 33, 8, &split);
    let (acc4, _, served4) = serve_split(4, Duration::from_millis(1), 33, 8, &split);
    assert_eq!(served1, split.labels.len());
    assert_eq!(served4, split.labels.len());
    // Identical seeds and per-item masks: batching and worker count must
    // not change any prediction, so aggregate accuracy matches exactly.
    assert_eq!(acc1, acc4);
}

#[test]
fn four_workers_outrun_one_worker_on_the_same_workload() {
    // 64x64 inputs make per-item compute (~1ms) a meaningful fraction of
    // the 4ms batch window. With 1 worker the window serializes with
    // compute; with 4 workers the windows overlap other replicas'
    // compute, so wall-clock drops even on a single core. Scheduler
    // noise on loaded machines can still blur one measurement, so take
    // the best of 3 attempts before judging.
    let split = test_split(64);
    let wait = Duration::from_millis(4);
    let mut best_speedup = 0.0f64;
    for attempt in 0..3 {
        let (acc1, t1, _) = serve_split(1, wait, 91, 64, &split);
        let (acc4, t4, _) = serve_split(4, wait, 91, 64, &split);
        assert_eq!(acc1, acc4);
        let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
        best_speedup = best_speedup.max(speedup);
        if best_speedup > 1.0 {
            return;
        }
        eprintln!("attempt {attempt}: speedup {speedup:.3} (1w {t1:?}, 4w {t4:?})");
    }
    panic!("4 workers never beat 1 worker; best speedup {best_speedup:.3}");
}
