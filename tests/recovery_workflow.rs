//! Fault-tolerance workflow: divergence rollback, kill-and-resume
//! equivalence (plain and TTD), typed resume errors, and harness
//! isolation of a failing workload.

use antidote_bench::{run_table1_workload, ReproWorkload, Scale, WorkloadError, WorkloadRunOptions};
use antidote_repro::core::recovery::params_finite;
use antidote_repro::core::settings::{proposed_settings, Workload};
use antidote_repro::core::trainer::TrainConfig;
use antidote_repro::core::{
    train_ttd_with_options, train_with_options, PruneSchedule, RecoverySettings, RunOptions,
    TrainError, TtdConfig,
};
use antidote_repro::data::{SynthConfig, SynthDataset};
use antidote_repro::models::{NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tiny_data() -> SynthDataset {
    SynthConfig::tiny(2, 8).with_samples(16, 8).generate()
}

fn tiny_net(seed: u64) -> Vgg {
    let mut rng = SmallRng::seed_from_u64(seed);
    Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2))
}

fn tiny_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 8,
        ..TrainConfig::fast_test()
    }
}

fn temp_ckpt(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "antidote_recovery_{name}_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// NaN injected at epoch k trips the sentinel: the run rolls back, backs
/// the learning rate off, and still completes with finite results.
#[test]
fn injected_nan_rolls_back_and_completes_finite() {
    let data = tiny_data();
    let cfg = tiny_cfg(4);

    let mut clean_net = tiny_net(0xFA);
    let clean = train_with_options(
        &mut clean_net,
        &data,
        &mut NoopHook,
        &cfg,
        &RunOptions::default(),
    )
    .expect("clean run succeeds");

    let mut net = tiny_net(0xFA);
    let opts = RunOptions {
        inject_nan_at_epoch: Some(1),
        ..RunOptions::default()
    };
    let history = train_with_options(&mut net, &data, &mut NoopHook, &cfg, &opts)
        .expect("run recovers from the injected fault");

    assert_eq!(history.recoveries.len(), 1, "exactly one rollback");
    let event = history.recoveries[0];
    assert_eq!(event.epoch, 1);
    assert_eq!(event.attempt, 1);
    assert!((event.lr_scale - 0.5).abs() < 1e-6, "default backoff halves the LR");

    assert_eq!(history.epochs.len(), cfg.epochs, "full run completes");
    assert!(
        history
            .epochs
            .iter()
            .all(|e| e.train_loss.is_finite() && e.train_acc.is_finite()),
        "no non-finite epoch stats survive recovery"
    );
    assert!(params_finite(&mut net), "final parameters are finite");

    // Epoch 0 was healthy and identical; the retried epoch ran at the
    // backed-off learning rate.
    assert_eq!(history.epochs[0], clean.epochs[0]);
    assert!(
        (history.epochs[1].lr - clean.epochs[1].lr * 0.5).abs() < 1e-7,
        "retried epoch uses the scaled LR: {} vs clean {}",
        history.epochs[1].lr,
        clean.epochs[1].lr
    );
}

/// With a zero retry budget the same fault is a typed `Diverged` error
/// carrying the healthy prefix of the history — never a panic.
#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let data = tiny_data();
    let cfg = tiny_cfg(3);
    let mut net = tiny_net(0xFB);
    let opts = RunOptions {
        recovery: RecoverySettings {
            max_retries: 0,
            ..RecoverySettings::default()
        },
        inject_nan_at_epoch: Some(1),
        ..RunOptions::default()
    };
    match train_with_options(&mut net, &data, &mut NoopHook, &cfg, &opts) {
        Err(TrainError::Diverged {
            epoch,
            retries,
            history,
            ..
        }) => {
            assert_eq!(epoch, 1);
            assert_eq!(retries, 0);
            assert_eq!(history.epochs.len(), 1, "healthy prefix is preserved");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

/// A run killed mid-way and resumed from its checkpoint reproduces the
/// uninterrupted run's epoch history exactly.
#[test]
fn killed_plain_run_resumes_to_identical_history() {
    let data = tiny_data();
    let cfg = tiny_cfg(4);
    let path = temp_ckpt("plain_resume");

    let mut uninterrupted_net = tiny_net(0xC0);
    let uninterrupted = train_with_options(
        &mut uninterrupted_net,
        &data,
        &mut NoopHook,
        &cfg,
        &RunOptions::default(),
    )
    .expect("uninterrupted run succeeds");

    // First invocation: "killed" after 2 epochs, checkpointing as it goes.
    let mut net = tiny_net(0xC0);
    let first_leg = RunOptions {
        checkpoint_to: Some(path.clone()),
        checkpoint_every: 1,
        stop_after_epochs: Some(2),
        ..RunOptions::default()
    };
    let partial = train_with_options(&mut net, &data, &mut NoopHook, &cfg, &first_leg)
        .expect("first leg succeeds");
    assert_eq!(partial.epochs.len(), 2);

    // Second invocation: a *differently initialized* network proves the
    // weights come from the checkpoint, not the in-memory state.
    let mut resumed_net = tiny_net(0xDEAD);
    let resumed = train_with_options(
        &mut resumed_net,
        &data,
        &mut NoopHook,
        &cfg,
        &RunOptions::resuming(&path),
    )
    .expect("resumed run succeeds");

    assert_eq!(
        resumed.epochs, uninterrupted.epochs,
        "resumed history must match the uninterrupted run epoch-for-epoch"
    );
    let _ = std::fs::remove_file(path);
}

/// The same kill-and-resume equivalence holds for TTD, including the
/// ratio-ascent ceiling trace (the ceiling resumes mid-ascent).
#[test]
fn killed_ttd_run_resumes_to_identical_history_and_trace() {
    let data = tiny_data();
    let schedule = PruneSchedule::new(vec![0.25, 0.5], vec![]);
    let mut cfg = TtdConfig::new(schedule, 6);
    cfg.train = tiny_cfg(6);
    let path = temp_ckpt("ttd_resume");

    let mut uninterrupted_net = tiny_net(0xC1);
    let uninterrupted =
        train_ttd_with_options(&mut uninterrupted_net, &data, &cfg, &RunOptions::default())
            .expect("uninterrupted TTD run succeeds");

    let mut net = tiny_net(0xC1);
    let first_leg = RunOptions {
        checkpoint_to: Some(path.clone()),
        checkpoint_every: 1,
        stop_after_epochs: Some(3),
        ..RunOptions::default()
    };
    let partial = train_ttd_with_options(&mut net, &data, &cfg, &first_leg)
        .expect("first TTD leg succeeds");
    assert_eq!(partial.history.epochs.len(), 3);

    let mut resumed_net = tiny_net(0xBEEF);
    let resumed =
        train_ttd_with_options(&mut resumed_net, &data, &cfg, &RunOptions::resuming(&path))
            .expect("resumed TTD run succeeds");

    assert_eq!(
        resumed.history.epochs, uninterrupted.history.epochs,
        "resumed TTD history must match the uninterrupted run"
    );
    assert_eq!(
        resumed.ratio_trace, uninterrupted.ratio_trace,
        "ratio-ascent ceiling trace must continue mid-ascent, not restart"
    );
    let _ = std::fs::remove_file(path);
}

/// Resuming against the wrong run flavor or configuration is a typed
/// error, and a missing checkpoint file is a checkpoint error.
#[test]
fn resume_mismatches_are_typed_errors() {
    let data = tiny_data();
    let cfg = tiny_cfg(3);
    let path = temp_ckpt("mismatch");

    let mut net = tiny_net(0xC2);
    let write = RunOptions {
        checkpoint_to: Some(path.clone()),
        stop_after_epochs: Some(1),
        ..RunOptions::default()
    };
    train_with_options(&mut net, &data, &mut NoopHook, &cfg, &write).expect("first leg succeeds");

    // A plain-training checkpoint cannot resume a TTD run.
    let mut ttd_cfg = TtdConfig::new(PruneSchedule::new(vec![0.25, 0.5], vec![]), 3);
    ttd_cfg.train = cfg.clone();
    let mut ttd_net = tiny_net(0xC2);
    match train_ttd_with_options(&mut ttd_net, &data, &ttd_cfg, &RunOptions::resuming(&path)) {
        Err(TrainError::ResumeMismatch(msg)) => {
            assert!(!msg.is_empty());
        }
        other => panic!("expected ResumeMismatch, got {:?}", other.map(|o| o.history)),
    }

    // A different training configuration is rejected.
    let mut other_cfg = cfg.clone();
    other_cfg.lr_max *= 2.0;
    let mut net2 = tiny_net(0xC2);
    match train_with_options(
        &mut net2,
        &data,
        &mut NoopHook,
        &other_cfg,
        &RunOptions::resuming(&path),
    ) {
        Err(TrainError::ResumeMismatch(_)) => {}
        other => panic!("expected ResumeMismatch, got {other:?}"),
    }

    // A missing checkpoint file is a typed checkpoint error.
    let missing = temp_ckpt("never_written");
    let mut net3 = tiny_net(0xC2);
    match train_with_options(
        &mut net3,
        &data,
        &mut NoopHook,
        &cfg,
        &RunOptions::resuming(&missing),
    ) {
        Err(TrainError::Checkpoint(_)) => {}
        other => panic!("expected Checkpoint error, got {other:?}"),
    }
    let _ = std::fs::remove_file(path);
}

/// The Table I harness surfaces an unrecoverable workload as a typed
/// error (which the `table1` binary turns into a failure row) instead of
/// aborting the whole sweep.
#[test]
fn table1_harness_isolates_a_failing_workload() {
    let workload = Workload::Vgg16Cifar10;
    let rw = ReproWorkload::for_workload(workload, Scale::Quick);
    let settings: Vec<_> = proposed_settings()
        .into_iter()
        .filter(|s| s.workload == workload)
        .collect();
    let opts = WorkloadRunOptions {
        recovery: RecoverySettings {
            max_retries: 0,
            ..RecoverySettings::default()
        },
        inject_fault_epoch: Some(0),
        ..WorkloadRunOptions::default()
    };
    match run_table1_workload(&rw, &settings, 0xAB1E, &opts) {
        Err(err @ WorkloadError::Baseline(TrainError::Diverged { .. })) => {
            assert_eq!(err.stage(), "baseline-train");
        }
        Err(other) => panic!("expected a baseline divergence, got {other}"),
        Ok(_) => panic!("injected fault with zero retries must fail the workload"),
    }
}
