//! Checkpoint workflow: TTD-train, save, reload into a fresh network,
//! and verify the reloaded model prunes identically.

use antidote_repro::core::checkpoint::Checkpoint;
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, DynamicPruner, PruneSchedule, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{Network, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn ttd_checkpoint_round_trip_preserves_pruned_accuracy() {
    let data = SynthConfig::tiny(3, 8).with_samples(16, 8).generate();
    let schedule = PruneSchedule::new(vec![0.25, 0.5], vec![]);
    let mut rng = SmallRng::seed_from_u64(0xCC);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));
    let mut cfg = TtdConfig::new(schedule.clone(), 6);
    cfg.train = TrainConfig {
        epochs: 6,
        ..TrainConfig::fast_test()
    };
    let outcome = train_ttd(&mut net, &data, &cfg);
    let mut pruner = outcome.pruner;
    let acc_before = trainer::evaluate(&mut net, &data.test, &mut pruner, 8);

    // Save + reload into a *differently initialized* network.
    let ckpt = Checkpoint::capture(&mut net as &mut dyn Network);
    let path = std::env::temp_dir().join("antidote_workflow_ckpt.json");
    ckpt.save(&path).expect("save succeeds");
    let loaded = Checkpoint::load(&path).expect("load succeeds");
    let mut rng2 = SmallRng::seed_from_u64(0xDD);
    let mut fresh = Vgg::new(&mut rng2, VggConfig::vgg_tiny(8, 3));
    loaded
        .restore(&mut fresh as &mut dyn Network)
        .expect("shapes match");

    let mut pruner2 = DynamicPruner::new(schedule);
    let acc_after = trainer::evaluate(&mut fresh, &data.test, &mut pruner2, 8);
    assert!(
        (acc_before - acc_after).abs() < 1e-6,
        "reloaded model must prune identically: {acc_before} vs {acc_after}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn checkpoint_architecture_string_matches_network() {
    let mut rng = SmallRng::seed_from_u64(0xEE);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let ckpt = Checkpoint::capture(&mut net as &mut dyn Network);
    assert_eq!(ckpt.architecture, net.describe());
    assert!(ckpt.architecture.starts_with("vgg("));
}
