//! Workspace-level property tests: invariants of masks, schedules and
//! the pruning runtime under arbitrary inputs.

use antidote_repro::core::flops::analytic_flops;
use antidote_repro::core::mask::{binarize, MaskPolicy};
use antidote_repro::core::{DynamicPruner, PruneSchedule};
use antidote_repro::models::{Network, TapId, TapInfo, VggConfig};
use antidote_repro::models::FeatureHook;
use antidote_repro::nn::Mode;
use antidote_repro::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_mask_keeps_exactly_rounded_k(
        values in proptest::collection::vec(-10.0f32..10.0, 1..64),
        keep in 0.0f64..=1.0,
    ) {
        let mask = binarize(&values, keep, MaskPolicy::TopK);
        let expected = ((keep * values.len() as f64).round() as usize).min(values.len());
        prop_assert_eq!(mask.iter().filter(|&&b| b).count(), expected);
    }

    #[test]
    fn kept_values_dominate_pruned_values(
        values in proptest::collection::vec(-10.0f32..10.0, 2..64),
        keep in 0.1f64..0.9,
    ) {
        let mask = binarize(&values, keep, MaskPolicy::TopK);
        let min_kept = values.iter().zip(&mask).filter(|(_, &m)| m)
            .map(|(&v, _)| v).fold(f32::INFINITY, f32::min);
        let max_pruned = values.iter().zip(&mask).filter(|(_, &m)| !m)
            .map(|(&v, _)| v).fold(f32::NEG_INFINITY, f32::max);
        if min_kept.is_finite() && max_pruned.is_finite() {
            prop_assert!(min_kept >= max_pruned);
        }
    }

    #[test]
    fn analytic_reduction_is_monotone_in_ratio(
        base in 0.0f64..0.5,
        extra in 0.0f64..0.5,
    ) {
        let shapes = VggConfig::vgg16(32, 10).conv_shapes();
        let mild = PruneSchedule::channel_only(vec![base; 5]);
        let aggr = PruneSchedule::channel_only(vec![base + extra; 5]);
        let r1 = analytic_flops(&shapes, &mild).reduction_pct();
        let r2 = analytic_flops(&shapes, &aggr).reduction_pct();
        prop_assert!(r2 + 1e-9 >= r1);
        prop_assert!((0.0..=100.0).contains(&r1));
        prop_assert!((0.0..=100.0).contains(&r2));
    }

    #[test]
    fn analytic_reduction_bounded_by_full_prune(ratios in proptest::collection::vec(0.0f64..=1.0, 5)) {
        let shapes = VggConfig::vgg16(32, 10).conv_shapes();
        let r = analytic_flops(&shapes, &PruneSchedule::channel_only(ratios)).reduction_pct();
        // First layer is never reduced, so 100% is unreachable.
        prop_assert!(r < 100.0);
        prop_assert!(r >= 0.0);
    }

    #[test]
    fn pruner_masks_keep_requested_fraction(
        c in 2usize..16,
        h in 2usize..6,
        prune in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let f = Tensor::from_fn([1, c, h, h], |i| ((i as u64 * 31 + seed) % 97) as f32 * 0.1);
        let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![prune], vec![]));
        let tap = TapInfo { id: TapId(0), block: 0, channels: c, spatial: h };
        match pruner.on_feature(tap, &f, Mode::Eval) {
            None => prop_assert!(prune == 0.0),
            Some(masks) => {
                let kept = masks[0].channel.as_ref().map(|m| m.iter().filter(|&&b| b).count());
                if let Some(kept) = kept {
                    let expected = (((1.0 - prune) * c as f64).round() as usize).min(c);
                    prop_assert_eq!(kept, expected);
                }
            }
        }
    }

    #[test]
    fn schedule_scaled_and_capped_stay_valid(
        ratios in proptest::collection::vec(0.0f64..=1.0, 1..6),
        factor in 0.0f64..2.0,
        cap in 0.0f64..=1.0,
    ) {
        let s = PruneSchedule::channel_only(ratios);
        for r in s.scaled(factor).channel_prune() {
            prop_assert!((0.0..=1.0).contains(r));
        }
        for (orig, capped) in s.channel_prune().iter().zip(s.capped(cap).channel_prune()) {
            prop_assert!(*capped <= *orig + 1e-12);
            prop_assert!(*capped <= cap + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn forward_hooked_output_is_finite_under_any_schedule(
        p1 in 0.0f64..=0.9,
        p2 in 0.0f64..=0.9,
        seed in 0u64..100,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        use antidote_repro::models::Vgg;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
        let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![p1, p2], vec![p2, 0.0]));
        let x = Tensor::from_fn([2, 3, 8, 8], |i| ((i as u64 + seed) % 13) as f32 * 0.1 - 0.6);
        let y = net.forward_hooked(&x, Mode::Eval, &mut pruner);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
        prop_assert_eq!(y.dims(), &[2, 2]);
    }
}
