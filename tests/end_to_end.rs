//! Cross-crate integration: the full AntiDote pipeline from data
//! generation through TTD training to measured dynamic-pruning inference.

use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, DynamicPruner, PruneSchedule, TtdConfig};
use antidote_repro::data::{BatchIter, SynthConfig};
use antidote_repro::models::{Network, NoopHook, ResNet, ResNetConfig, Vgg, VggConfig};
use antidote_repro::nn::loss::softmax_cross_entropy;
use antidote_repro::nn::Mode;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn vgg_pipeline_trains_prunes_and_measures() {
    let data = SynthConfig::tiny(3, 8).with_samples(20, 8).generate();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 3));

    let target = PruneSchedule::new(vec![0.25, 0.5], vec![]);
    let mut cfg = TtdConfig::new(target, 8);
    cfg.train = TrainConfig {
        epochs: 8,
        ..TrainConfig::fast_test()
    };
    let outcome = train_ttd(&mut net, &data, &cfg);
    assert!(outcome.history.final_train_acc() > 0.3, "TTD should learn");

    let mut pruner = outcome.pruner;
    let (acc, pruned_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 8);
    let (_, dense_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut NoopHook, 8);
    assert!(acc > 0.3, "pruned accuracy {acc} should beat chance");
    assert!(
        pruned_macs < dense_macs,
        "dynamic pruning must reduce measured MACs: {pruned_macs} vs {dense_macs}"
    );
    // Block-2 prunes 50% of channels; savings should be visible (>5%).
    assert!(pruned_macs / dense_macs < 0.95);
}

#[test]
fn resnet_pipeline_with_spatial_pruning() {
    let data = SynthConfig::tiny(2, 8).with_samples(12, 4).generate();
    let mut rng = SmallRng::seed_from_u64(2);
    let mut net = ResNet::new(&mut rng, ResNetConfig::resnet_small(8, 2, 4));

    // The paper's ResNet regime: both channel and spatial pruning, odd
    // layers only (enforced by the model's tap placement).
    let target = PruneSchedule::new(vec![0.3, 0.3, 0.5], vec![0.5, 0.5, 0.5]);
    let mut cfg = TtdConfig::new(target.clone(), 5);
    cfg.train = TrainConfig {
        epochs: 5,
        ..TrainConfig::fast_test()
    };
    let outcome = train_ttd(&mut net, &data, &cfg);
    let mut pruner = outcome.pruner;
    let (acc, pruned_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 8);
    let (_, dense_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut NoopHook, 8);
    assert!(acc >= 0.0 && acc <= 1.0);
    assert!(pruned_macs < dense_macs);
    // Stats must show both dimensions pruned at every tap.
    for tap in pruner.stats().taps() {
        let (ck, sk) = pruner.stats().mean_keep(tap).unwrap();
        assert!(ck < 1.0, "channel pruning active at tap {tap}");
        assert!(sk < 1.0, "spatial pruning active at tap {tap}");
    }
}

#[test]
fn mask_multiply_and_masked_executor_agree_after_training() {
    // The two inference paths (Eq. 5 multiplicative masking vs actual
    // computation skipping) must be numerically equivalent on a trained
    // network — this is the lossless-skipping guarantee.
    let data = SynthConfig::tiny(2, 8).with_samples(10, 6).generate();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    trainer::train(
        &mut net,
        &data,
        &mut NoopHook,
        &TrainConfig {
            epochs: 4,
            ..TrainConfig::fast_test()
        },
    );
    let schedule = PruneSchedule::new(vec![0.5, 0.5], vec![0.25, 0.0]);
    let mut p1 = DynamicPruner::new(schedule.clone());
    let acc_mask = trainer::evaluate(&mut net, &data.test, &mut p1, 8);
    let mut p2 = DynamicPruner::new(schedule);
    let (acc_measured, _) = trainer::evaluate_measured(&mut net, &data.test, &mut p2, 8);
    assert!(
        (acc_mask - acc_measured).abs() < 1e-6,
        "mask path {acc_mask} vs executor path {acc_measured}"
    );
}

#[test]
fn gradients_flow_through_masked_taps_during_ttd() {
    // A TTD training step with aggressive masks must still produce
    // finite, nonzero gradients in the earliest layer (no vanishing
    // through the mask multiply).
    let data = SynthConfig::tiny(2, 8).generate();
    let mut rng = SmallRng::seed_from_u64(4);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![0.5, 0.75], vec![]));
    let (images, labels) = BatchIter::new(&data.train, 8, Some(0)).next().unwrap();
    let logits = net.forward_hooked(&images, Mode::Train, &mut pruner);
    let out = softmax_cross_entropy(&logits, &labels);
    net.zero_grad();
    net.backward(&out.grad);
    let mut first_grad_norm = None;
    net.visit_params_mut(&mut |p| {
        if first_grad_norm.is_none() {
            first_grad_norm = Some(p.grad.norm());
        }
        assert!(p.grad.data().iter().all(|v| v.is_finite()));
    });
    assert!(first_grad_norm.unwrap() > 0.0, "first layer must receive gradient");
}

#[test]
fn per_input_masks_differ_across_test_set() {
    // Dynamic pruning's defining property: different inputs produce
    // different masks. We check that the pruner's per-tap keep stats are
    // exact (top-k) while the actual kept sets differ between two
    // distinct images.
    use antidote_repro::models::FeatureHook;
    let data = SynthConfig::tiny(2, 8).generate();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
    let mut captured: Vec<Vec<bool>> = Vec::new();
    struct Capture<'a> {
        inner: DynamicPruner,
        sink: &'a mut Vec<Vec<bool>>,
    }
    impl FeatureHook for Capture<'_> {
        fn on_feature(
            &mut self,
            tap: antidote_repro::models::TapInfo,
            feature: &antidote_repro::tensor::Tensor,
            mode: Mode,
        ) -> Option<Vec<antidote_repro::nn::masked::FeatureMask>> {
            let masks = self.inner.on_feature(tap, feature, mode)?;
            if tap.block == 1 {
                for m in &masks {
                    if let Some(ch) = &m.channel {
                        self.sink.push(ch.clone());
                    }
                }
            }
            Some(masks)
        }
    }
    let mut hook = Capture {
        inner: DynamicPruner::new(PruneSchedule::new(vec![0.0, 0.5], vec![])),
        sink: &mut captured,
    };
    let (images, _) = BatchIter::new(&data.test, 8, None).next().unwrap();
    let _ = net.forward_hooked(&images, Mode::Eval, &mut hook);
    assert!(captured.len() >= 2);
    // Every mask keeps exactly half the channels…
    for m in &captured {
        assert_eq!(m.iter().filter(|&&b| b).count(), m.len() / 2);
    }
    // …but not every input keeps the same ones.
    assert!(
        captured.windows(2).any(|w| w[0] != w[1]),
        "masks should vary across inputs"
    );
}
