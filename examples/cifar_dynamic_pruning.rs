//! The paper's headline scenario at reproduction scale: TTD-train a
//! 5-block VGG on the CIFAR10 stand-in with the Table I channel ratios
//! `[0.2, 0.2, 0.6, 0.9, 0.9]`, then compare dense vs dynamically pruned
//! inference — accuracy, analytic paper-scale FLOPs, and measured MACs.
//!
//! Run with: `cargo run --example cifar_dynamic_pruning --release`

use antidote_repro::core::flops::analytic_flops;
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, PruneSchedule, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{Network, NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let schedule = PruneSchedule::channel_only(vec![0.2, 0.2, 0.6, 0.9, 0.9]);

    // Paper-scale arithmetic first: this is exact, independent of training.
    let paper_shapes = VggConfig::vgg16(32, 10).conv_shapes();
    let breakdown = analytic_flops(&paper_shapes, &schedule);
    println!(
        "paper-scale VGG16/CIFAR10: baseline {:.3e} MACs, pruned {:.3e} ({:.1}% reduction; paper reports 53.5%)",
        breakdown.baseline_macs as f64,
        breakdown.pruned_macs,
        breakdown.reduction_pct()
    );

    // Reproduction-scale training.
    let data = SynthConfig::synth_cifar10().with_samples(24, 8).generate();
    let mut rng = SmallRng::seed_from_u64(0xC1FA);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_small(32, 10, 4));
    println!("\nmodel: {}", net.describe());

    let mut cfg = TtdConfig::new(schedule, 10);
    cfg.train = TrainConfig {
        epochs: 10,
        batch_size: 32,
        ..TrainConfig::default()
    };
    println!("TTD training with ratio ascent (warm-up 0.1, step 0.05)…");
    let outcome = train_ttd(&mut net, &data, &cfg);
    for (epoch, cap) in &outcome.ratio_trace {
        print!("[e{epoch}:{cap:.2}] ");
    }
    println!(
        "\nfinal train acc {:.1}%",
        outcome.history.final_train_acc() * 100.0
    );

    // Dense vs dynamically pruned evaluation.
    let dense_acc = trainer::evaluate_plain(&mut net, &data.test, 32);
    let (_, dense_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut NoopHook, 32);
    let mut pruner = outcome.pruner;
    let (pruned_acc, pruned_macs) =
        trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 32);
    println!("\n          accuracy    MACs/image");
    println!("dense     {:>6.1}%    {:>10.3e}", dense_acc * 100.0, dense_macs);
    println!(
        "pruned    {:>6.1}%    {:>10.3e}   ({:.1}% measured reduction)",
        pruned_acc * 100.0,
        pruned_macs,
        100.0 * (1.0 - pruned_macs / dense_macs)
    );
    println!(
        "accuracy drop: {:+.2} points (paper reports +0.2 at 53.5% reduction)",
        (dense_acc - pruned_acc) * 100.0
    );
}
