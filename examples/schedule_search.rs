//! Automated schedule derivation: run the Fig. 3 sensitivity analysis
//! and turn it into per-block TTD targets programmatically
//! (`core::schedule_search`), then TTD-train against the derived
//! schedule — the paper's Sec. IV-B loop, fully automated.
//!
//! Run with: `cargo run --example schedule_search --release`

use antidote_repro::core::schedule_search::{derive_schedule, SearchOptions};
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let data = SynthConfig::synth_cifar10().with_samples(24, 8).generate();
    let mut rng = SmallRng::seed_from_u64(0x5EA2);
    let mut net = Vgg::new(
        &mut rng,
        VggConfig::vgg_small(32, 10, 8).with_batchnorm(),
    );
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        ..TrainConfig::default()
    };
    println!("pre-training VGG…");
    trainer::train(&mut net, &data, &mut NoopHook, &cfg);
    let base = trainer::evaluate_plain(&mut net, &data.test, 32);
    println!("baseline accuracy: {:.1}%", base * 100.0);

    // Derive per-block ratios from sensitivity (≤5-point drop, ≤0.9).
    let sweep = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9];
    let schedule = derive_schedule(
        &mut net,
        &data.test,
        5,
        &sweep,
        32,
        SearchOptions::default(),
    );
    println!(
        "derived channel schedule: {:?} (paper hand-tuned [0.2, 0.2, 0.6, 0.9, 0.9])",
        schedule.channel_prune()
    );

    // TTD-train a fresh model against the derived schedule.
    let mut rng2 = SmallRng::seed_from_u64(0x5EA2);
    let mut fresh = Vgg::new(
        &mut rng2,
        VggConfig::vgg_small(32, 10, 8).with_batchnorm(),
    );
    let mut ttd = TtdConfig::new(schedule, 16);
    ttd.train = TrainConfig {
        epochs: 16,
        batch_size: 32,
        ..TrainConfig::default()
    };
    println!("TTD training against the derived schedule…");
    let outcome = train_ttd(&mut fresh, &data, &ttd);
    let mut pruner = outcome.pruner;
    let pruned = trainer::evaluate(&mut fresh, &data.test, &mut pruner, 32);
    println!(
        "dynamic-pruned accuracy with derived schedule: {:.1}% (baseline {:.1}%)",
        pruned * 100.0,
        base * 100.0
    );
}
