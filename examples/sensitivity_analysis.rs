//! Block sensitivity analysis (the Fig. 3 workflow): train a model, then
//! sweep per-block channel-pruning ratios one block at a time to find
//! each block's tolerable upper bound — the input to TTD's per-block
//! targets.
//!
//! Run with: `cargo run --example sensitivity_analysis --release`

use antidote_repro::core::analysis::block_sensitivity;
use antidote_repro::core::trainer::{train, TrainConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let data = SynthConfig::synth_cifar10().with_samples(24, 8).generate();
    let mut rng = SmallRng::seed_from_u64(0x5E45);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_small(32, 10, 4));
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        ..TrainConfig::default()
    };
    println!("training 5-block VGG on the CIFAR10 stand-in…");
    train(&mut net, &data, &mut NoopHook, &cfg);

    let ratios: Vec<f64> = vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9];
    let curves = block_sensitivity(&mut net, &data.test, 5, &ratios, 32);

    println!("\naccuracy (%) when pruning ONLY the given block's channels:\n");
    print!("{:>8}", "ratio");
    for c in &curves {
        print!("{:>9}", c.label);
    }
    println!();
    for (i, r) in ratios.iter().enumerate() {
        print!("{r:>8.1}");
        for c in &curves {
            print!("{:>8.1}%", c.accuracy[i] * 100.0);
        }
        println!();
    }

    // Derive per-block upper bounds: the largest swept ratio whose
    // accuracy drop stays within 5 points — exactly how Sec. IV-B turns
    // Fig. 3 into TTD targets.
    println!("\nderived per-block upper bounds (≤5-point drop):");
    let bounds: Vec<f64> = curves
        .iter()
        .map(|c| {
            let base = c.accuracy[0];
            c.ratios
                .iter()
                .zip(&c.accuracy)
                .filter(|(_, &a)| base - a <= 0.05)
                .map(|(&r, _)| r)
                .fold(0.0, f64::max)
        })
        .collect();
    println!("  {bounds:?}");
    println!("  (paper's VGG16/CIFAR10 bounds were [0.2, 0.2, 0.6, 0.9, 0.9])");
}
