//! The ImageNet scenario (Table I section 4 / Fig. 4): on large inputs
//! the redundancy lives in the *spatial* dimension, so the paper prunes
//! spatial columns `[0.5 … 0.5]` with almost no channel pruning. This
//! example reproduces that regime on the 64×64 ImageNet stand-in and
//! shows the channel/spatial decomposition.
//!
//! Run with: `cargo run --example imagenet_spatial_pruning --release`

use antidote_repro::core::flops::{analytic_flops, decompose};
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, DynamicPruner, PruneSchedule, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{Network, NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Setting-1 of Table I: channel [0.1 0 0 0 0.2], spatial [0.5]*5.
    let schedule = PruneSchedule::new(
        vec![0.1, 0.0, 0.0, 0.0, 0.2],
        vec![0.5, 0.5, 0.5, 0.5, 0.5],
    );

    // Paper-scale analytics (224x224 VGG16).
    let shapes = VggConfig::vgg16(224, 100).conv_shapes();
    let b = analytic_flops(&shapes, &schedule);
    let comp = decompose(&shapes, &schedule);
    println!(
        "paper-scale VGG16/ImageNet: {:.3e} -> {:.3e} MACs ({:.1}% reduction; paper 51.2%)",
        b.baseline_macs as f64,
        b.pruned_macs,
        b.reduction_pct()
    );
    println!(
        "decomposition: channel-only {:.1}% vs spatial-only {:.1}% (paper Fig. 4: 2.4% vs 52.1%)",
        comp.channel_pct, comp.spatial_pct
    );

    // Reproduction scale: 64x64 synthetic ImageNet stand-in, 10 classes.
    let data = SynthConfig {
        classes: 10,
        ..SynthConfig::synth_imagenet100()
    }
    .with_samples(10, 3)
    .generate();
    let mut rng = SmallRng::seed_from_u64(0x1196);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_small(64, 10, 4));
    println!("\nmodel: {}", net.describe());

    let mut cfg = TtdConfig::new(schedule.clone(), 6);
    cfg.train = TrainConfig {
        epochs: 6,
        batch_size: 16,
        ..TrainConfig::default()
    };
    println!("TTD training…");
    let outcome = train_ttd(&mut net, &data, &cfg);
    println!("final train acc {:.1}%", outcome.history.final_train_acc() * 100.0);

    let (_, dense_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut NoopHook, 16);
    for (label, s) in [
        ("spatial-only", PruneSchedule::spatial_only(schedule.spatial_prune().to_vec())),
        ("channel-only", PruneSchedule::channel_only(schedule.channel_prune().to_vec())),
        ("combined", schedule.clone()),
    ] {
        let mut pruner = DynamicPruner::new(s);
        let (acc, macs) = trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 16);
        println!(
            "{label:<13} acc {:>5.1}%   measured reduction {:>5.1}%",
            acc * 100.0,
            100.0 * (1.0 - macs / dense_macs)
        );
    }
    println!("\nexpected shape: spatial-only ≫ channel-only on large inputs (paper Fig. 4).");
}
