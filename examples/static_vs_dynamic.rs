//! Static vs dynamic pruning head-to-head (the core comparison of
//! Table I): the same trained network is pruned (a) statically with
//! L1-ranked fixed masks + fine-tuning, and (b) dynamically with
//! attention masks after TTD training — at the same per-block ratios.
//!
//! Run with: `cargo run --example static_vs_dynamic --release`

use antidote_repro::baselines::{prune_statically, StaticMethod, StaticPruneConfig};
use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{train_ttd, PruneSchedule, TtdConfig};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let data = SynthConfig::tiny(4, 16).with_samples(32, 8).generate();
    let schedule = PruneSchedule::channel_only(vec![0.25, 0.5]);
    let epochs = 10;
    let train_cfg = TrainConfig {
        epochs,
        batch_size: 16,
        ..TrainConfig::default()
    };

    // --- static: train plain, rank by L1, mask, finetune -------------
    let mut rng = SmallRng::seed_from_u64(0x57A7);
    let mut static_net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 4));
    trainer::train(&mut static_net, &data, &mut NoopHook, &train_cfg);
    let base_acc = trainer::evaluate_plain(&mut static_net, &data.test, 16);
    let cfg = StaticPruneConfig {
        method: StaticMethod::L1,
        schedule: schedule.clone(),
        finetune: TrainConfig {
            epochs: epochs / 2,
            lr_max: 0.01,
            batch_size: 16,
            ..TrainConfig::default()
        },
        ranking_batches: 4,
    };
    let static_outcome = prune_statically(&mut static_net, &data, &cfg);

    // --- dynamic: TTD train, attention-prune, NO finetune -------------
    let mut rng2 = SmallRng::seed_from_u64(0x57A7);
    let mut dyn_net = Vgg::new(&mut rng2, VggConfig::vgg_tiny(16, 4));
    let mut ttd_cfg = TtdConfig::new(schedule.clone(), epochs);
    ttd_cfg.train = train_cfg;
    let outcome = train_ttd(&mut dyn_net, &data, &ttd_cfg);
    let mut pruner = outcome.pruner;
    let dynamic_acc = trainer::evaluate(&mut dyn_net, &data.test, &mut pruner, 16);

    println!("per-block channel prune ratios: {:?}", schedule.channel_prune());
    println!("unpruned baseline accuracy     : {:>6.1}%", base_acc * 100.0);
    println!(
        "static  (L1 + finetune)        : {:>6.1}%  (before finetune {:.1}%)",
        static_outcome.post_finetune_acc * 100.0,
        static_outcome.pre_finetune_acc * 100.0
    );
    println!(
        "dynamic (TTD + attention masks): {:>6.1}%  (no fine-tuning needed)",
        dynamic_acc * 100.0
    );
    // Bonus: static masks are input-independent, so they can be compiled
    // into a physically smaller network (filter surgery) for deployment.
    let mut masks = std::collections::BTreeMap::new();
    for tap in antidote_repro::models::Network::taps(&static_net) {
        if let Some(m) = static_outcome.hook.mask(tap.id.0) {
            masks.insert(tap.id.0, m.to_vec());
        }
    }
    let full_params = antidote_repro::models::Network::param_count(&mut static_net);
    let mut shrunk = static_net.shrink(&masks);
    println!(
        "\nfilter surgery: {} params -> {} params ({} MACs -> {} MACs per image)",
        full_params,
        shrunk.param_count(),
        antidote_repro::models::Network::conv_shapes(&static_net)
            .iter()
            .map(|s| s.macs())
            .sum::<u64>(),
        shrunk.macs(16, 16),
    );
    println!(
        "key difference: the static mask removes the SAME channels for every \
         input (and can be compiled away); the dynamic mask re-selects \
         channels per input, recovering channels that matter for specific \
         inputs (Sec. III-B of the paper)."
    );
}
