//! Quickstart: train a small VGG on a synthetic CIFAR stand-in, then
//! dynamically prune it with AntiDote's attention masks and measure the
//! real computation savings.
//!
//! Run with: `cargo run --example quickstart --release`

use antidote_repro::core::trainer::{self, TrainConfig};
use antidote_repro::core::{DynamicPruner, PruneSchedule};
use antidote_repro::data::SynthConfig;
use antidote_repro::models::{Network, NoopHook, Vgg, VggConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic 4-class dataset of 3x16x16 images (see DESIGN.md §2
    //    for why synthetic data faithfully exercises dynamic pruning).
    let data = SynthConfig::tiny(4, 16).with_samples(32, 8).generate();
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train.len(),
        data.test.len(),
        data.config.classes
    );

    // 2. A two-block VGG.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(16, 4));
    println!("model: {} ({} parameters)", net.describe(), net.param_count());

    // 3. Plain training (SGD + cosine decay, the paper's setup).
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let history = trainer::train(&mut net, &data, &mut NoopHook, &cfg);
    println!(
        "trained {} epochs: final train acc {:.1}%",
        history.epochs.len(),
        history.final_train_acc() * 100.0
    );
    let base_acc = trainer::evaluate_plain(&mut net, &data.test, 16);
    println!("test accuracy (dense): {:.1}%", base_acc * 100.0);

    // 4. Attention-based dynamic pruning: drop 50% of block-2 channels
    //    per input, picked by Eq. (1) channel attention.
    let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![0.0, 0.5], vec![]));
    let (pruned_acc, pruned_macs) =
        trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 16);
    let (_, dense_macs) = trainer::evaluate_measured(&mut net, &data.test, &mut NoopHook, 16);
    println!(
        "test accuracy (50% of block-2 channels dynamically pruned): {:.1}%",
        pruned_acc * 100.0
    );
    println!(
        "measured MACs per image: {:.3e} -> {:.3e} ({:.1}% skipped)",
        dense_macs,
        pruned_macs,
        100.0 * (1.0 - pruned_macs / dense_macs)
    );
    if let Some((ck, _)) = pruner.stats().mean_keep(1) {
        println!("pruner kept on average {:.0}% of block-2 channels", ck * 100.0);
    }
}
