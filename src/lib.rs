//! # antidote-repro
//!
//! Umbrella crate of the Rust reproduction of *AntiDote:
//! Attention-based Dynamic Optimization for Neural Network Runtime
//! Efficiency* (Yu, Liu, Wang, Wang, Chen — DATE 2020).
//!
//! Everything is re-exported under one roof so examples and downstream
//! users need a single dependency:
//!
//! - [`tensor`]: dense f32 tensors, GEMM, im2col ([`antidote_tensor`]);
//! - [`nn`]: layers with backprop, SGD, masked conv ([`antidote_nn`]);
//! - [`data`]: synthetic vision datasets ([`antidote_data`]);
//! - [`models`]: VGG/ResNet with feature taps ([`antidote_models`]);
//! - [`core`]: attention, dynamic pruning, TTD, FLOPs
//!   ([`antidote_core`]);
//! - [`baselines`]: L1/Taylor/GM/FO static pruning
//!   ([`antidote_baselines`]).
//!
//! # Quickstart
//!
//! ```
//! use antidote_repro::core::{DynamicPruner, PruneSchedule, trainer};
//! use antidote_repro::data::SynthConfig;
//! use antidote_repro::models::{Vgg, VggConfig};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A tiny synthetic dataset and VGG.
//! let data = SynthConfig::tiny(2, 8).generate();
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut net = Vgg::new(&mut rng, VggConfig::vgg_tiny(8, 2));
//!
//! // Dynamically prune 50% of block-2 channels, measuring real MACs.
//! let mut pruner = DynamicPruner::new(PruneSchedule::new(vec![0.0, 0.5], vec![]));
//! let (acc, macs) = trainer::evaluate_measured(&mut net, &data.test, &mut pruner, 8);
//! assert!(acc >= 0.0 && macs > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the Table I / Fig. 2–4 regenerators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use antidote_baselines as baselines;
pub use antidote_core as core;
pub use antidote_data as data;
pub use antidote_models as models;
pub use antidote_nn as nn;
pub use antidote_tensor as tensor;
